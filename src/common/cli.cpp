#include "common/cli.hpp"

#include <charconv>
#include <iostream>
#include <ostream>

#include "common/error.hpp"

namespace dsem {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  DSEM_ENSURE(!entries_.contains(name), "duplicate CLI entry: " + name);
  entries_[name] = Entry{help, "false", /*is_flag=*/true, /*set=*/false};
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  DSEM_ENSURE(!entries_.contains(name), "duplicate CLI entry: " + name);
  entries_[name] = Entry{help, default_value, /*is_flag=*/false, /*set=*/false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    const auto it = entries_.find(name);
    DSEM_ENSURE(it != entries_.end(), "unknown flag: --" + name);
    Entry& entry = it->second;
    if (entry.is_flag) {
      DSEM_ENSURE(!inline_value.has_value(),
                  "flag --" + name + " does not take a value");
      entry.value = "true";
    } else if (inline_value) {
      entry.value = *inline_value;
    } else {
      DSEM_ENSURE(i + 1 < argc, "missing value for --" + name);
      entry.value = argv[++i];
    }
    entry.set = true;
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  const auto it = entries_.find(name);
  DSEM_ENSURE(it != entries_.end(), "unregistered flag: " + name);
  DSEM_ENSURE(it->second.is_flag, "entry is not a flag: " + name);
  return it->second.value == "true";
}

std::string CliParser::option(const std::string& name) const {
  const auto it = entries_.find(name);
  DSEM_ENSURE(it != entries_.end(), "unregistered option: " + name);
  DSEM_ENSURE(!it->second.is_flag, "entry is a flag, not an option: " + name);
  return it->second.value;
}

std::int64_t CliParser::option_int(const std::string& name) const {
  const std::string raw = option(name);
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), out);
  DSEM_ENSURE(ec == std::errc() && ptr == raw.data() + raw.size(),
              "option --" + name + " is not an integer: " + raw);
  return out;
}

double CliParser::option_double(const std::string& name) const {
  const std::string raw = option(name);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(raw, &consumed);
    DSEM_ENSURE(consumed == raw.size(),
                "option --" + name + " is not a number: " + raw);
    return out;
  } catch (const std::invalid_argument&) {
    DSEM_ENSURE(false, "option --" + name + " is not a number: " + raw);
  }
  return 0.0; // unreachable
}

void CliParser::print_usage(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name;
    if (!entry.is_flag) {
      os << "=<value> (default: " << entry.value << ')';
    }
    os << "\n      " << entry.help << '\n';
  }
  os << "  --help\n      Show this message.\n";
}

} // namespace dsem
