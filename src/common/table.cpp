#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace dsem {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DSEM_ENSURE(!header_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DSEM_ENSURE(cells.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

} // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

namespace {

std::vector<std::string> instrument_header(
    const std::vector<std::string>& extras) {
  std::vector<std::string> header = {"kind", "name", "count", "total",
                                     "mean", "min",  "max"};
  header.insert(header.end(), extras.begin(), extras.end());
  return header;
}

} // namespace

InstrumentTable::InstrumentTable(std::vector<std::string> extra_columns)
    : table_(instrument_header(extra_columns)),
      extra_count_(extra_columns.size()) {}

void InstrumentTable::add(std::vector<std::string> row,
                          std::vector<std::string> extras) {
  DSEM_ENSURE(extras.size() <= extra_count_,
              "instrument row has more extras than declared columns");
  for (auto& cell : extras) {
    row.push_back(std::move(cell));
  }
  row.resize(table_.column_count());
  table_.add_row(std::move(row));
}

void InstrumentTable::add_distribution(std::string kind, std::string name,
                                       std::size_t count, std::string total,
                                       std::string mean, std::string min,
                                       std::string max,
                                       std::vector<std::string> extras) {
  add({std::move(kind), std::move(name), fmt(count), std::move(total),
       std::move(mean), std::move(min), std::move(max)},
      std::move(extras));
}

void InstrumentTable::add_value(std::string kind, std::string name,
                                std::size_t count, std::string value,
                                std::vector<std::string> extras) {
  add({std::move(kind), std::move(name), fmt(count), std::move(value), "", "",
       ""},
      std::move(extras));
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

std::string fmt(std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu", value);
  return buf;
}

std::string fmt_g(double value, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant, value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

} // namespace dsem
