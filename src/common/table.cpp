#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace dsem {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DSEM_ENSURE(!header_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DSEM_ENSURE(cells.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

} // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

std::string fmt(std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu", value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

} // namespace dsem
