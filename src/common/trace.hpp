// Structured tracing and metrics for the sweep pipeline.
//
// A process-wide, off-by-default event recorder: RAII spans, named
// counters/gauges and instant markers, recorded into per-thread buffers
// and exported either as Chrome trace_event JSON (loadable in
// chrome://tracing / Perfetto) or as a flat summary table (common/table).
// The disabled path is a single relaxed-atomic load and branch — cheap
// enough to leave the instrumentation in hot layers permanently (a
// regression test in tests/common/trace_test.cpp asserts this).
//
// Every event carries two orderings:
//  - Wall-clock timestamps (steady_clock) for the Chrome export. These are
//    report-only: they depend on machine load and thread scheduling.
//  - A logical (path, seq) key for determinism tests. A ROOT span — e.g.
//    one per sweep grid point, keyed by its flat grid index — derives its
//    path purely from (name, logical_index) and resets the calling
//    thread's logical scope, so attribution never depends on which pool
//    thread executes a task. Events inside the scope take consecutive
//    sequence numbers; task bodies are serial, so the key is a pure
//    function of the grid, not of DSEM_THREADS.
//
// Events are classified Stable or TimingDependent. Stable events (grid
// point spans, retry/backoff counters, training spans, ...) have
// deterministic content and keys: the golden-trace tests compare them
// bit-for-bit across pool sizes. TimingDependent events (pool
// task/steal/idle, ProfileCache hit/miss, phase wall times) are excluded
// from the logical view — mirroring the SweepReport determinism contract.
// A stable-site event recorded inside a pool-executed task but outside
// any logical scope is downgraded automatically (ThreadPool wraps task
// execution in a ScopeReset), so the invariant is structural.
//
// Enabling: set the DSEM_TRACE environment variable to a path (the Chrome
// JSON is written there at process exit), pass --trace-out to the
// sweep-driving binaries, or call trace::set_enabled(true) directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsem::trace {

/// Canonical category names used by the built-in instrumentation.
namespace cat {
inline constexpr const char* kPool = "pool";
inline constexpr const char* kSweep = "sweep";
inline constexpr const char* kMeasure = "measure";
inline constexpr const char* kCache = "cache";
inline constexpr const char* kQueue = "queue";
inline constexpr const char* kTrain = "train";
inline constexpr const char* kEval = "eval";
inline constexpr const char* kPhase = "phase";
} // namespace cat

enum class Reliability : std::uint8_t {
  kStable,          ///< deterministic content; part of the logical view
  kTimingDependent, ///< scheduling/wall-clock dependent; report-only
};

enum class EventKind : std::uint8_t { kSpan, kCounter, kGauge, kInstant };

/// One recorded event. `name` and `category` must be string literals (or
/// otherwise outlive the tracer); free-form data goes in `arg`.
struct Event {
  EventKind kind = EventKind::kInstant;
  bool stable = false;    ///< survived the Reliability + scope downgrade
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;       ///< buffer registration order; report-only
  std::int64_t start_ns = 0;   ///< wall clock since tracer epoch; report-only
  std::int64_t dur_ns = 0;     ///< spans only; report-only
  double value = 0.0;          ///< counter delta / gauge value / span value
  bool has_value = false;
  std::uint64_t logical_path = 0; ///< enclosing scope (0 = thread root)
  std::uint64_t logical_seq = 0;  ///< serial order within the scope
  std::string arg;
};

/// The deterministic projection of an Event: everything except wall-clock
/// fields and thread ids. Golden-trace tests compare vectors of these.
struct LogicalEvent {
  std::uint64_t path = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::string category;
  std::string arg;
  double value = 0.0;

  bool operator==(const LogicalEvent&) const = default;
};

namespace detail {

extern std::atomic<bool> g_enabled;

void record_counter(const char* name, double delta, Reliability r);
void record_gauge(const char* name, double value, Reliability r,
                  const std::string& arg);
void record_instant(const char* name, const char* category, Reliability r,
                    const std::string& arg);

} // namespace detail

/// True when the global tracer is recording. The only cost instrumentation
/// pays when tracing is off: one relaxed atomic load and a branch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns global recording on or off (DSEM_TRACE and --trace-out call this).
void set_enabled(bool on) noexcept;

/// RAII span. Construct cheaply on every code path; records one kSpan
/// event at destruction when tracing was enabled at construction.
class Span {
public:
  /// Plain span: nests in the calling thread's current logical scope.
  Span(const char* name, const char* category) noexcept {
    if (enabled()) {
      begin(name, category, 0, /*root=*/false, Reliability::kStable);
    }
  }

  /// Plain span with explicit reliability — kTimingDependent for spans
  /// whose existence or placement depends on scheduling (pool internals).
  Span(const char* name, const char* category, Reliability r) noexcept {
    if (enabled()) {
      begin(name, category, 0, /*root=*/false, r);
    }
  }

  /// ROOT span: derives its logical path from (name, logical_index) alone
  /// and makes itself the thread's scope until destruction. Use one per
  /// deterministically-indexed unit of work (grid point, LOOCV fold).
  Span(const char* name, const char* category,
       std::uint64_t logical_index) noexcept {
    if (enabled()) {
      begin(name, category, logical_index, /*root=*/true,
            Reliability::kStable);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) {
      end();
    }
  }

  /// Attaches a free-form argument (kernel name, input name, ...). Only
  /// copies when the span is live.
  void arg(const std::string& value) {
    if (active_) {
      arg_ = value;
    }
  }

  /// Attaches a numeric argument (frequency, row count, ...).
  void value(double v) noexcept {
    if (active_) {
      value_ = v;
      has_value_ = true;
    }
  }

private:
  void begin(const char* name, const char* category,
             std::uint64_t logical_index, bool root, Reliability r) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint64_t path_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t saved_path_ = 0;
  std::uint64_t saved_seq_ = 0;
  double value_ = 0.0;
  bool saved_active_ = false;
  bool active_ = false;
  bool root_ = false;
  bool stable_ = false;
  bool has_value_ = false;
  std::string arg_;
};

/// Monotonic named counter: `delta` accumulates across the run (the Chrome
/// export emits the running total at each sample).
inline void counter(const char* name, double delta,
                    Reliability r = Reliability::kStable) {
  if (enabled()) {
    detail::record_counter(name, delta, r);
  }
}

/// Point-in-time named value (row counts, phase seconds, hit rates).
inline void gauge(const char* name, double value,
                  Reliability r = Reliability::kStable,
                  const std::string& arg = {}) {
  if (enabled()) {
    detail::record_gauge(name, value, r, arg);
  }
}

/// Zero-duration marker (a fault observed, a retry scheduled).
inline void instant(const char* name, const char* category,
                    Reliability r = Reliability::kStable,
                    const std::string& arg = {}) {
  if (enabled()) {
    detail::record_instant(name, category, r, arg);
  }
}

/// Clears the calling thread's logical scope for the duration of a
/// pool-executed task: work stolen by a blocked waiter must not record
/// into the waiter's scope (attribution would then depend on scheduling).
/// ThreadPool wraps every task execution in one of these.
class ScopeReset {
public:
  ScopeReset() noexcept;
  ~ScopeReset();

  ScopeReset(const ScopeReset&) = delete;
  ScopeReset& operator=(const ScopeReset&) = delete;

private:
  std::uint64_t saved_path_ = 0;
  std::uint64_t saved_seq_ = 0;
  bool saved_active_ = false;
};

/// The process-wide event recorder. Never destroyed (worker threads may
/// record until process exit); DSEM_TRACE registers an atexit writer.
class Tracer {
public:
  static Tracer& global();

  /// Drops all recorded events and resets the calling thread's logical
  /// sequence (so back-to-back golden runs start from the same state).
  void clear();

  std::size_t event_count() const;

  /// Merged copy of all buffers, sorted by start timestamp.
  std::vector<Event> events() const;

  /// Stable events only, canonically ordered by (path, seq, content) —
  /// identical across DSEM_THREADS for deterministic pipelines.
  std::vector<LogicalEvent> logical_events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  void write_chrome_trace(std::ostream& os) const;

  /// Flat per-name summary (spans: count/total/mean/min/max; counters:
  /// totals; gauges: last value) rendered with common/table.
  void write_summary(std::ostream& os) const;

private:
  Tracer() = default;
};

/// Writes the global tracer's Chrome trace to `path` (throws on I/O error).
void write_chrome_file(const std::string& path);

} // namespace dsem::trace
