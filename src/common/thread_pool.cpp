#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/trace.hpp"

namespace dsem {

namespace {

// DSEM_THREADS sizing for the global pool: a positive integer pins the
// worker count (1 = exact serial execution); unset, empty, 0, or
// malformed values fall back to hardware_concurrency.
std::size_t global_pool_size() {
  const char* env = std::getenv("DSEM_THREADS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(value);
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) {
      return false;
    }
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  // A blocked waiter stealing work: the stolen task must not record trace
  // events into the waiter's logical scope (which task a waiter steals is
  // a scheduling accident).
  trace::ScopeReset scope_reset;
  trace::Span span("pool.steal", trace::cat::kPool,
                   trace::Reliability::kTimingDependent);
  // Which thread steals how many tasks is a scheduling accident.
  metrics::counter("pool.steals", 1, metrics::Reliability::kWallClock);
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      if (stopping_ || !tasks_.empty()) {
        // Fast path: no idle span for an already-satisfied wait.
        if (tasks_.empty()) {
          return;
        }
      } else {
        trace::Span idle("pool.idle", trace::cat::kPool,
                         trace::Reliability::kTimingDependent);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          return; // stopping_ and drained
        }
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    trace::ScopeReset scope_reset;
    trace::Span span("pool.task", trace::cat::kPool,
                     trace::Reliability::kTimingDependent);
    // Steals run some submissions inline, so the worker tally varies with
    // scheduling even though the submission count does not.
    metrics::counter("pool.tasks", 1, metrics::Reliability::kWallClock);
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(global_pool_size());
  return pool;
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) {
    return;
  }
  if (pool.thread_count() <= 1) {
    // A lone worker cannot overlap anything with the caller: enqueueing
    // chunks would only buy condvar round-trips per region. Chunk geometry
    // is a scheduling accident callers must not depend on, so collapsing
    // to one inline chunk is observationally equivalent — and exactly the
    // "DSEM_THREADS=1 means serial" contract.
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  if (grain == 0) {
    // Aim for a few chunks per worker to smooth load imbalance.
    const std::size_t target = pool.thread_count() * 4;
    grain = std::max<std::size_t>(1, n / std::max<std::size_t>(1, target));
  }
  if (n <= grain) {
    fn(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n / grain + 1);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(pool.submit([lo, hi, &fn] { fn(lo, hi); }));
  }
  // Propagate the first exception but always wait for every chunk, so the
  // caller never returns while tasks still reference its locals.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      pool.help_while_waiting(f);
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_chunks(
      pool, begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      grain);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, fn, grain);
}

} // namespace dsem
