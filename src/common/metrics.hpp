// Aggregate metrics for the sweep pipeline: counters, gauges, and
// log-bucketed histograms.
//
// dsem::trace (trace.hpp) records individual events for timeline
// inspection; this registry is its aggregate complement — the layer that
// answers "how many launches, what was the p99 measurement latency, what
// did retries cost" without storing one record per event. Instruments are
// named at the call site and live in per-thread shards: the hot path
// touches only thread-local state (no contended lock), and exporters merge
// the shards into one deterministic, name-sorted Snapshot.
//
// The disabled path is the same single relaxed-atomic load and branch as
// the tracer's, cheap enough to leave in the per-launch hot loops
// permanently (regression-tested in tests/common/metrics_test.cpp).
//
// Determinism contract (mirrors SweepReport and the trace logical view):
// every instrument is tagged Reliability::kDeterministic or kWallClock at
// the call site.
//  - Deterministic instruments aggregate values that are pure functions of
//    seeds and grids (simulated seconds/joules, retry counts, grid sizes).
//    Aggregation is order-independent — integer sums for counters, integer
//    bucket counts plus min/max for histograms — so the deterministic
//    Snapshot view is bit-identical for any DSEM_THREADS. A histogram's
//    floating-point `sum` is the one order-dependent aggregate, so it (and
//    the mean) is excluded from the deterministic JSON view.
//  - kWallClock instruments carry scheduling- or clock-dependent content
//    (task tallies, cache hit/miss splits, training durations) and appear
//    only in the full view.
// Gauges are last-write-wins (ordered by a global update counter), which
// is only deterministic for serial driver code: anything set from inside a
// pool task must be tagged kWallClock.
//
// Enabling: set the DSEM_METRICS environment variable to a path (the JSON
// snapshot is written there at process exit), pass --metrics-out to the
// CLI binaries, or call metrics::set_enabled(true) directly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace dsem::metrics {

enum class Reliability : std::uint8_t {
  kDeterministic, ///< pure function of seeds/grid; safe across DSEM_THREADS
  kWallClock,     ///< scheduling- or clock-dependent; full view only
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Histogram bucket geometry: log-spaced boundaries with 8 buckets per
/// octave (adjacent boundaries differ by 2^(1/8) ≈ 9 %), spanning
/// [kHistogramMin, kHistogramMin * 2^(kHistogramBuckets-1)/8) ≈ 1e-12..8e14
/// — wide enough for seconds, joules, and counts alike. Bucket 0 catches
/// everything <= kHistogramMin (including zero and negatives).
inline constexpr int kBucketsPerOctave = 8;
inline constexpr double kHistogramMin = 1e-12;
inline constexpr std::size_t kHistogramBuckets = 720;

/// Index of the bucket holding `value` (pure function of the value).
std::size_t bucket_index(double value) noexcept;
/// Upper boundary of bucket `index` (the value every sample in the bucket
/// is attributed to when estimating quantiles).
double bucket_upper_bound(std::size_t index) noexcept;

namespace detail {

extern std::atomic<bool> g_enabled;

void record_counter(std::string_view name, std::uint64_t delta,
                    Reliability r);
void record_gauge(std::string_view name, double value, Reliability r);
void record_histogram(std::string_view name, double value, Reliability r);

} // namespace detail

/// True when the global registry is recording. The only cost
/// instrumentation pays when metrics are off: one relaxed atomic load and
/// a branch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns global recording on or off (DSEM_METRICS and --metrics-out call
/// this).
void set_enabled(bool on) noexcept;

/// Monotonic named counter (integer deltas, so cross-shard aggregation is
/// exact and order-independent).
inline void counter(std::string_view name, std::uint64_t delta = 1,
                    Reliability r = Reliability::kDeterministic) {
  if (enabled()) {
    detail::record_counter(name, delta, r);
  }
}

/// Point-in-time named value; last write wins across shards. Defaults to
/// kWallClock because last-write order is a scheduling accident unless the
/// writes are serial (see the determinism contract above).
inline void gauge(std::string_view name, double value,
                  Reliability r = Reliability::kWallClock) {
  if (enabled()) {
    detail::record_gauge(name, value, r);
  }
}

/// Observes one sample into a log-bucketed histogram.
inline void histogram(std::string_view name, double value,
                      Reliability r = Reliability::kDeterministic) {
  if (enabled()) {
    detail::record_histogram(name, value, r);
  }
}

/// RAII wall-clock timer: observes the scope's elapsed seconds into
/// histogram `name` (always kWallClock — wall time is never
/// deterministic). Cheap to construct when metrics are disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(std::string_view name) noexcept {
    if (enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
      active_ = true;
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (active_) {
      detail::record_histogram(
          name_,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count(),
          Reliability::kWallClock);
    }
  }

private:
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

// --- Snapshots -------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  Reliability reliability = Reliability::kDeterministic;
  std::uint64_t count = 0; ///< number of increments
  std::uint64_t total = 0; ///< sum of deltas
};

struct GaugeSnapshot {
  std::string name;
  Reliability reliability = Reliability::kWallClock;
  double value = 0.0;        ///< most recent write (global update order)
  std::uint64_t updates = 0; ///< number of writes
};

struct HistogramSnapshot {
  std::string name;
  Reliability reliability = Reliability::kDeterministic;
  std::uint64_t count = 0;
  double sum = 0.0; ///< order-dependent; excluded from deterministic view
  double min = 0.0;
  double max = 0.0;
  /// Per-bucket sample counts (bucket_index geometry), trimmed to the last
  /// occupied bucket.
  std::vector<std::uint64_t> buckets;

  /// Quantile estimate with common/statistics semantics: sample rank
  /// position q*(count-1), linear interpolation between ranks. Each sample
  /// is attributed its bucket's upper boundary, clamped to the observed
  /// [min, max], so the estimate's relative error is bounded by one bucket
  /// width (2^(1/8)-1 ≈ 9 %) and single-sample / tied histograms are
  /// exact at the extremes.
  double quantile(double q) const;
  double mean() const noexcept;

  /// Standalone accumulation, for histograms that live outside the
  /// registry (the obs:: drift monitor folds residuals into snapshots
  /// directly). Same bucket geometry and min/max/sum semantics as
  /// recording through the registry.
  void observe(double value);

  /// Folds `other` into this snapshot — the same merge the registry
  /// applies across per-thread shards, so merging two registries'
  /// snapshots equals one registry that saw all samples (bucket counts,
  /// count, min, max exactly; `sum` is the one order-dependent field).
  /// Names/reliability must match unless one side is empty (count 0).
  void merge(const HistogramSnapshot& other);
};

/// Deterministic, name-sorted merge of every shard at one point in time.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Schema "dsem-metrics-v1". When `deterministic_only`, kWallClock
  /// instruments and the order-dependent histogram fields (sum, mean) are
  /// dropped — the remainder is bit-identical for any DSEM_THREADS on a
  /// deterministic pipeline (golden-snapshot tested).
  json::Value to_json(bool deterministic_only = false) const;

  /// Flat human-readable rendering via the shared instrument table
  /// (common/table): histograms with p50/p90/p99, counters/gauges as
  /// value rows.
  void write_table(std::ostream& os) const;
};

inline constexpr const char* kMetricsSchema = "dsem-metrics-v1";

/// The process-wide registry. Never destroyed (worker threads may record
/// until process exit); DSEM_METRICS registers an atexit writer.
class Registry {
public:
  static Registry& global();

  /// Merged view of all per-thread shards.
  Snapshot snapshot() const;

  /// Drops every instrument in every shard (tests; back-to-back runs).
  void clear();

private:
  Registry() = default;
};

/// Writes the global registry's snapshot as pretty-printed JSON to `path`
/// (throws on I/O error).
void write_json_file(const std::string& path);

} // namespace dsem::metrics
