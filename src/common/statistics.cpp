#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dsem::stats {

double sum(std::span<const double> xs) {
  double acc = 0.0;
  double comp = 0.0; // Kahan compensation: benches sum thousands of samples
  for (double x : xs) {
    const double y = x - comp;
    const double t = acc + y;
    comp = (t - acc) - y;
    acc = t;
  }
  return acc;
}

double mean(std::span<const double> xs) {
  DSEM_ENSURE(!xs.empty(), "mean of empty range");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - m) * (x - m);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  DSEM_ENSURE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  DSEM_ENSURE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  DSEM_ENSURE(!xs.empty(), "quantile of empty range");
  DSEM_ENSURE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mae(std::span<const double> truth, std::span<const double> pred) {
  DSEM_ENSURE(truth.size() == pred.size(), "mae: size mismatch");
  DSEM_ENSURE(!truth.empty(), "mae of empty range");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> pred) {
  DSEM_ENSURE(truth.size() == pred.size(), "rmse: size mismatch");
  DSEM_ENSURE(!truth.empty(), "rmse of empty range");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mape(std::span<const double> truth, std::span<const double> pred,
            double eps) {
  DSEM_ENSURE(truth.size() == pred.size(), "mape: size mismatch");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) {
      continue;
    }
    acc += std::abs((truth[i] - pred[i]) / truth[i]);
    ++n;
  }
  DSEM_ENSURE(n > 0, "mape: all truth values below eps");
  return acc / static_cast<double>(n);
}

double r2(std::span<const double> truth, std::span<const double> pred) {
  DSEM_ENSURE(truth.size() == pred.size(), "r2: size mismatch");
  DSEM_ENSURE(truth.size() >= 2, "r2 needs at least two samples");
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : -std::numeric_limits<double>::infinity();
  }
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  DSEM_ENSURE(xs.size() == ys.size(), "pearson: size mismatch");
  DSEM_ENSURE(xs.size() >= 2, "pearson needs at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  DSEM_ENSURE(sxx > 0.0 && syy > 0.0, "pearson: zero-variance input");
  return sxy / std::sqrt(sxx * syy);
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

} // namespace dsem::stats
