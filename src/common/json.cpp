#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace dsem::json {

bool Value::as_bool() const {
  DSEM_ENSURE(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  DSEM_ENSURE(type_ == Type::kNumber, "json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  DSEM_ENSURE(type_ == Type::kString, "json: not a string");
  return string_;
}

const Value::Array& Value::as_array() const {
  DSEM_ENSURE(type_ == Type::kArray, "json: not an array");
  return array_;
}

Value::Array& Value::as_array() {
  DSEM_ENSURE(type_ == Type::kArray, "json: not an array");
  return array_;
}

const Value::Object& Value::as_object() const {
  DSEM_ENSURE(type_ == Type::kObject, "json: not an object");
  return object_;
}

Value::Object& Value::as_object() {
  DSEM_ENSURE(type_ == Type::kObject, "json: not an object");
  return object_;
}

void Value::push_back(Value v) { as_array().push_back(std::move(v)); }

void Value::set(std::string key, Value v) {
  Object& fields = as_object();
  for (auto& [k, existing] : fields) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  fields.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Value* Value::find(std::string_view key) {
  return const_cast<Value*>(std::as_const(*this).find(key));
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  DSEM_ENSURE(v != nullptr, "json: missing key: " + std::string(key));
  return *v;
}

Value& Value::at(std::string_view key) {
  Value* v = find(key);
  DSEM_ENSURE(v != nullptr, "json: missing key: " + std::string(key));
  return *v;
}

void escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
    case '"':
      os << "\\\"";
      break;
    case '\\':
      os << "\\\\";
      break;
    case '\n':
      os << "\\n";
      break;
    case '\t':
      os << "\\t";
      break;
    case '\r':
      os << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        const char* hex = "0123456789abcdef";
        os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
      } else {
        os << c;
      }
    }
  }
}

namespace {

void write_number(std::ostream& os, double v) {
  DSEM_ENSURE(std::isfinite(v), "json: cannot serialize a non-finite number");
  // Integral values within the exactly-representable range print without
  // a decimal point (counts, iteration totals); everything else prints
  // round-trip exact.
  constexpr double kExactIntLimit = 9007199254740992.0; // 2^53
  if (v == std::floor(v) && std::abs(v) < kExactIntLimit) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    os << buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  }
}

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    DSEM_ENSURE(pos_ == text_.size(),
                "json: trailing characters at offset " + std::to_string(pos_));
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw contract_error("json parse error at offset " + std::to_string(pos_) +
                         ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
    case '{':
      return parse_object();
    case '[':
      return parse_array();
    case '"':
      return Value(parse_string());
    case 't':
      if (consume_literal("true")) {
        return Value(true);
      }
      fail("invalid literal");
    case 'f':
      if (consume_literal("false")) {
        return Value(false);
      }
      fail("invalid literal");
    case 'n':
      if (consume_literal("null")) {
        return Value();
      }
      fail("invalid literal");
    default:
      return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.as_object().emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = next();
      if (c == '}') {
        return out;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_whitespace();
      const char c = next();
      if (c == ']') {
        return out;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
      case '"':
      case '\\':
      case '/':
        out += esc;
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        unsigned cp = parse_hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00-\uDFFF.
          expect('\\');
          expect('u');
          const unsigned lo = parse_hex4();
          if (lo < 0xDC00 || lo > 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          fail("unpaired surrogate in \\u escape");
        }
        append_utf8(out, cp);
        break;
      }
      default:
        --pos_;
        fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

void Value::write_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent >= 0) {
      os << '\n' << std::string(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
  case Type::kNull:
    os << "null";
    break;
  case Type::kBool:
    os << (bool_ ? "true" : "false");
    break;
  case Type::kNumber:
    write_number(os, number_);
    break;
  case Type::kString:
    os << '"';
    escape(os, string_);
    os << '"';
    break;
  case Type::kArray: {
    if (array_.empty()) {
      os << "[]";
      break;
    }
    os << '[';
    for (std::size_t i = 0; i < array_.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      newline_pad(depth + 1);
      array_[i].write_impl(os, indent, depth + 1);
    }
    newline_pad(depth);
    os << ']';
    break;
  }
  case Type::kObject: {
    if (object_.empty()) {
      os << "{}";
      break;
    }
    os << '{';
    for (std::size_t i = 0; i < object_.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      newline_pad(depth + 1);
      os << '"';
      escape(os, object_[i].first);
      os << "\":";
      if (indent >= 0) {
        os << ' ';
      }
      object_[i].second.write_impl(os, indent, depth + 1);
    }
    newline_pad(depth);
    os << '}';
    break;
  }
  }
}

void Value::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

} // namespace dsem::json
