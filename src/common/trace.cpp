#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace dsem::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

} // namespace detail

namespace {

/// Per-thread event sink. Owned by the registry, never freed: a thread
/// may record until process exit. The per-buffer mutex is uncontended in
/// steady state (only its thread appends) and exists so exporters can
/// take consistent snapshots while recording continues.
struct Buffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct Registry {
  mutable std::mutex mutex;
  std::deque<std::unique_ptr<Buffer>> buffers;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry; // leaked: see Tracer doc comment
  return *r;
}

/// Calling thread's logical-trace state. `scope_*` is the active root
/// scope; `thread_seq` orders scope-less stable events (serial driver
/// code); `pool_depth` > 0 marks pool-executed tasks, whose scope-less
/// events are downgraded to timing-dependent (their thread placement is
/// a scheduling accident).
struct TlState {
  Buffer* buffer = nullptr;
  std::uint64_t scope_path = 0;
  std::uint64_t scope_seq = 0;
  bool scope_active = false;
  std::uint64_t thread_seq = 0;
  int pool_depth = 0;
};

thread_local TlState tl_state;

Buffer& local_buffer() {
  TlState& tl = tl_state;
  if (tl.buffer == nullptr) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    reg.buffers.push_back(std::make_unique<Buffer>());
    reg.buffers.back()->tid =
        static_cast<std::uint32_t>(reg.buffers.size() - 1);
    tl.buffer = reg.buffers.back().get();
  }
  return *tl.buffer;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

constexpr std::uint64_t kUnstableSeq = ~0ULL;

std::uint64_t hash_cstr(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  }
  return h;
}

/// Logical path of a root scope: a pure function of (name, index).
std::uint64_t root_path(const char* name, std::uint64_t index) noexcept {
  const std::uint64_t h = derive_seed(hash_cstr(name), index);
  return h == 0 ? 1 : h;
}

/// Stability + logical key assignment for a non-root event. Stable events
/// consume one sequence number from the enclosing scope (or the thread's
/// root stream when serial driver code records outside any scope).
struct LogicalKey {
  std::uint64_t path = 0;
  std::uint64_t seq = kUnstableSeq;
  bool stable = false;
};

LogicalKey next_key(Reliability r) noexcept {
  TlState& tl = tl_state;
  LogicalKey key;
  if (r != Reliability::kStable) {
    key.path = tl.scope_active ? tl.scope_path : 0;
    return key;
  }
  if (tl.scope_active) {
    key.path = tl.scope_path;
    key.seq = tl.scope_seq++;
    key.stable = true;
  } else if (tl.pool_depth == 0) {
    key.seq = tl.thread_seq++;
    key.stable = true;
  }
  return key;
}

void push_event(Event&& event) {
  Buffer& buf = local_buffer();
  event.tid = buf.tid;
  std::lock_guard lock(buf.mutex);
  buf.events.push_back(std::move(event));
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
    case '"':
      os << "\\\"";
      break;
    case '\\':
      os << "\\\\";
      break;
    case '\n':
      os << "\\n";
      break;
    case '\t':
      os << "\\t";
      break;
    case '\r':
      os << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        const char* hex = "0123456789abcdef";
        os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
      } else {
        os << c;
      }
    }
  }
}

/// DSEM_TRACE=path: enable at load time, write the Chrome JSON at exit.
std::string& env_trace_path() {
  static std::string* path = new std::string;
  return *path;
}

void write_env_trace() {
  const std::string& path = env_trace_path();
  if (!path.empty()) {
    write_chrome_file(path);
  }
}

bool init_from_env() {
  const char* env = std::getenv("DSEM_TRACE");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  env_trace_path() = env;
  set_enabled(true);
  std::atexit(write_env_trace);
  return true;
}

[[maybe_unused]] const bool g_env_initialized = init_from_env();

} // namespace

namespace detail {

void record_counter(const char* name, double delta, Reliability r) {
  Event e;
  e.kind = EventKind::kCounter;
  e.name = name;
  e.category = cat::kPhase;
  e.start_ns = now_ns();
  e.value = delta;
  e.has_value = true;
  const LogicalKey key = next_key(r);
  e.logical_path = key.path;
  e.logical_seq = key.seq;
  e.stable = key.stable;
  push_event(std::move(e));
}

void record_gauge(const char* name, double value, Reliability r,
                  const std::string& arg) {
  Event e;
  e.kind = EventKind::kGauge;
  e.name = name;
  e.category = cat::kPhase;
  e.start_ns = now_ns();
  e.value = value;
  e.has_value = true;
  e.arg = arg;
  const LogicalKey key = next_key(r);
  e.logical_path = key.path;
  e.logical_seq = key.seq;
  e.stable = key.stable;
  push_event(std::move(e));
}

void record_instant(const char* name, const char* category, Reliability r,
                    const std::string& arg) {
  Event e;
  e.kind = EventKind::kInstant;
  e.name = name;
  e.category = category;
  e.start_ns = now_ns();
  e.arg = arg;
  const LogicalKey key = next_key(r);
  e.logical_path = key.path;
  e.logical_seq = key.seq;
  e.stable = key.stable;
  push_event(std::move(e));
}

} // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Span::begin(const char* name, const char* category,
                 std::uint64_t logical_index, bool root,
                 Reliability r) noexcept {
  name_ = name;
  category_ = category;
  root_ = root;
  active_ = true;
  TlState& tl = tl_state;
  if (root) {
    saved_path_ = tl.scope_path;
    saved_seq_ = tl.scope_seq;
    saved_active_ = tl.scope_active;
    path_ = root_path(name, logical_index);
    seq_ = 0;
    stable_ = true;
    tl.scope_path = path_;
    tl.scope_seq = 1; // 0 is the root span's own event
    tl.scope_active = true;
  } else {
    const LogicalKey key = next_key(r);
    path_ = key.path;
    seq_ = key.seq;
    stable_ = key.stable;
  }
  start_ns_ = now_ns();
}

void Span::end() noexcept {
  const std::int64_t stop = now_ns();
  TlState& tl = tl_state;
  if (root_) {
    tl.scope_path = saved_path_;
    tl.scope_seq = saved_seq_;
    tl.scope_active = saved_active_;
  }
  try {
    Event e;
    e.kind = EventKind::kSpan;
    e.name = name_;
    e.category = category_;
    e.start_ns = start_ns_;
    e.dur_ns = stop - start_ns_;
    e.value = value_;
    e.has_value = has_value_;
    e.logical_path = path_;
    e.logical_seq = seq_;
    e.stable = stable_;
    e.arg = std::move(arg_);
    push_event(std::move(e));
  } catch (...) {
    // Recording must never take down the traced program (spans unwind
    // through exception paths); a lost event is the lesser evil.
  }
}

ScopeReset::ScopeReset() noexcept {
  TlState& tl = tl_state;
  saved_path_ = tl.scope_path;
  saved_seq_ = tl.scope_seq;
  saved_active_ = tl.scope_active;
  tl.scope_active = false;
  ++tl.pool_depth;
}

ScopeReset::~ScopeReset() {
  TlState& tl = tl_state;
  tl.scope_path = saved_path_;
  tl.scope_seq = saved_seq_;
  tl.scope_active = saved_active_;
  --tl.pool_depth;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer; // leaked: threads record until exit
  return *tracer;
}

void Tracer::clear() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
  // Restart the caller's scope-less sequence so back-to-back golden runs
  // compare equal. Other threads' sequences only matter inside scopes,
  // which reset themselves.
  tl_state.thread_seq = 0;
}

std::size_t Tracer::event_count() const {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::vector<Event> Tracer::events() const {
  Registry& reg = registry();
  std::vector<Event> out;
  {
    std::lock_guard lock(reg.mutex);
    for (const auto& buf : reg.buffers) {
      std::lock_guard buf_lock(buf->mutex);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<LogicalEvent> Tracer::logical_events() const {
  std::vector<LogicalEvent> out;
  for (const Event& e : events()) {
    if (!e.stable) {
      continue;
    }
    LogicalEvent le;
    le.path = e.logical_path;
    le.seq = e.logical_seq;
    le.kind = e.kind;
    le.name = e.name;
    le.category = e.category;
    le.arg = e.arg;
    le.value = e.value;
    out.push_back(std::move(le));
  }
  // Canonical order: logical key first, full content as tie-break, so two
  // runs with the same stable-event multiset compare equal element-wise.
  std::sort(out.begin(), out.end(),
            [](const LogicalEvent& a, const LogicalEvent& b) {
              return std::tie(a.path, a.seq, a.name, a.category, a.arg,
                              a.value, a.kind) <
                     std::tie(b.path, b.seq, b.name, b.category, b.arg,
                              b.value, b.kind);
            });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<Event> all = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit_common = [&](const Event& e, const char* ph) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"";
    json_escape(os, e.name);
    os << "\",\"cat\":\"";
    json_escape(os, e.category);
    os << "\",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.start_ns) / 1000.0;
  };
  const auto emit_args = [&](const Event& e, double counter_total,
                             bool use_total) {
    os << ",\"args\":{";
    bool first_arg = true;
    if (e.has_value || use_total) {
      os << "\"value\":" << (use_total ? counter_total : e.value);
      first_arg = false;
    }
    if (!e.arg.empty()) {
      os << (first_arg ? "" : ",") << "\"arg\":\"";
      json_escape(os, e.arg);
      os << "\"";
      first_arg = false;
    }
    if (e.stable) {
      os << (first_arg ? "" : ",") << "\"logical_path\":\"" << e.logical_path
         << "\",\"logical_seq\":" << e.logical_seq;
    }
    os << "}}";
  };

  std::map<std::string, double> counter_totals;
  for (const Event& e : all) {
    switch (e.kind) {
    case EventKind::kSpan:
      emit_common(e, "X");
      os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
      emit_args(e, 0.0, false);
      break;
    case EventKind::kCounter: {
      double& total = counter_totals[e.name];
      total += e.value;
      emit_common(e, "C");
      emit_args(e, total, true);
      break;
    }
    case EventKind::kGauge:
      emit_common(e, "C");
      emit_args(e, 0.0, false);
      break;
    case EventKind::kInstant:
      emit_common(e, "i");
      os << ",\"s\":\"t\"";
      emit_args(e, 0.0, false);
      break;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_summary(std::ostream& os) const {
  struct SpanStats {
    std::size_t count = 0;
    double total_ns = 0.0;
    double min_ns = 0.0;
    double max_ns = 0.0;
  };
  struct ValueStats {
    std::size_t count = 0;
    double total = 0.0;
    double last = 0.0;
  };
  std::map<std::string, SpanStats> spans;
  std::map<std::string, ValueStats> counters;
  std::map<std::string, ValueStats> gauges;
  std::size_t instants = 0;
  for (const Event& e : events()) {
    switch (e.kind) {
    case EventKind::kSpan: {
      SpanStats& s = spans[e.name];
      const auto dur = static_cast<double>(e.dur_ns);
      if (s.count == 0 || dur < s.min_ns) {
        s.min_ns = dur;
      }
      if (s.count == 0 || dur > s.max_ns) {
        s.max_ns = dur;
      }
      ++s.count;
      s.total_ns += dur;
      break;
    }
    case EventKind::kCounter: {
      ValueStats& v = counters[e.name];
      ++v.count;
      v.total += e.value;
      v.last = e.value;
      break;
    }
    case EventKind::kGauge: {
      ValueStats& v = gauges[e.name];
      ++v.count;
      v.total += e.value;
      v.last = e.value;
      break;
    }
    case EventKind::kInstant:
      ++instants;
      break;
    }
  }

  InstrumentTable table;
  for (const auto& [name, s] : spans) {
    const double n = static_cast<double>(s.count);
    table.add_distribution("span", name, s.count, fmt(s.total_ns / 1e6, 3),
                           fmt(s.total_ns / n / 1e3, 3), fmt(s.min_ns / 1e3, 3),
                           fmt(s.max_ns / 1e3, 3));
  }
  for (const auto& [name, v] : counters) {
    table.add_value("counter", name, v.count, fmt(v.total, 4));
  }
  for (const auto& [name, v] : gauges) {
    table.add_value("gauge", name, v.count, fmt(v.last, 4));
  }
  os << "trace summary (" << event_count() << " events, " << instants
     << " instants; span times ms total / us mean-min-max)\n";
  table.print(os);
}

void write_chrome_file(const std::string& path) {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open trace output file: " + path);
  Tracer::global().write_chrome_trace(out);
  DSEM_ENSURE(out.good(), "failed writing trace output file: " + path);
}

} // namespace dsem::trace
