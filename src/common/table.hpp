// Aligned-text and CSV table emission for the benchmark harness.
//
// Every figure/table bench prints two renditions of the same data: a CSV
// block (machine-readable, one per plotted series) and an aligned summary
// (human-readable). Table collects rows as strings; formatting policy (cell
// precision) is the caller's via fmt helpers below.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsem {

class Table {
public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return header_.size(); }

  /// Render with padded, space-separated columns.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("%.*f").
std::string fmt(double value, int precision = 4);

/// Integer formatting.
std::string fmt(long long value);
std::string fmt(std::size_t value);

/// Percentage with sign, e.g. +12.3 % for 0.123.
std::string fmt_percent(double fraction, int precision = 1);

/// Banner used by benches to delimit experiment sections in stdout.
void print_banner(std::ostream& os, const std::string& title);

} // namespace dsem
