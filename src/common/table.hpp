// Aligned-text and CSV table emission for the benchmark harness.
//
// Every figure/table bench prints two renditions of the same data: a CSV
// block (machine-readable, one per plotted series) and an aligned summary
// (human-readable). Table collects rows as strings; formatting policy (cell
// precision) is the caller's via fmt helpers below.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsem {

class Table {
public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return header_.size(); }

  /// Render with padded, space-separated columns.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shared layout for instrument summaries — the trace span summary
/// (trace::Tracer::write_summary) and the metrics snapshot table
/// (metrics::Snapshot::write_table) render through this one helper so the
/// column set and blank-fill policy cannot drift apart. Columns are
/// {kind, name, count, total, mean, min, max} plus optional extras (the
/// metrics table appends p50/p90/p99). Callers format the numeric cells
/// (fmt / fmt_g); this class owns the row shapes:
///  - distribution rows (spans, histograms) fill every statistic column;
///  - value rows (counters, gauges) fill only `total` and leave
///    mean/min/max blank.
class InstrumentTable {
public:
  explicit InstrumentTable(std::vector<std::string> extra_columns = {});

  void add_distribution(std::string kind, std::string name, std::size_t count,
                        std::string total, std::string mean, std::string min,
                        std::string max, std::vector<std::string> extras = {});

  void add_value(std::string kind, std::string name, std::size_t count,
                 std::string value, std::vector<std::string> extras = {});

  void print(std::ostream& os) const { table_.print(os); }
  const Table& table() const noexcept { return table_; }

private:
  void add(std::vector<std::string> row, std::vector<std::string> extras);

  Table table_;
  std::size_t extra_count_;
};

/// Fixed-precision float formatting ("%.*f").
std::string fmt(double value, int precision = 4);

/// Significant-digit float formatting ("%.*g"): for quantities whose scale
/// varies too widely for a fixed decimal count (histogram samples span
/// microseconds to joules).
std::string fmt_g(double value, int significant = 6);

/// Integer formatting.
std::string fmt(long long value);
std::string fmt(std::size_t value);

/// Percentage with sign, e.g. +12.3 % for 0.123.
std::string fmt_percent(double fraction, int precision = 1);

/// Banner used by benches to delimit experiment sections in stdout.
void print_banner(std::ostream& os, const std::string& title);

} // namespace dsem
