#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/ledger.hpp"
#include "sim/power_model.hpp"
#include "synergy/queue.hpp"

namespace dsem::sched {

namespace {

/// Per-job results of the parallel precompute pass, written into
/// pre-sized slots so the pass is bit-identical for any pool size.
struct JobPlan {
  double ref_time_s = 0.0;   ///< noise-free runtime at the default clock
  double ref_energy_j = 0.0; ///< noise-free energy at the default clock
  double deadline_s = 0.0;
  // Model policy only: predicted curves over the candidate clocks,
  // index-aligned, ascending frequency.
  std::vector<double> cand_freqs_mhz;
  std::vector<double> cand_time_s;
  std::vector<double> cand_energy_j;
};

/// Every `stride`-th schedule frequency, with the maximum always kept so
/// the run-at-max fallback exists on every candidate grid.
std::vector<double> strided_candidates(std::span<const double> freqs_mhz,
                                       std::size_t stride) {
  DSEM_ENSURE(!freqs_mhz.empty(), "sched: artifact has no frequencies");
  std::vector<double> out;
  for (std::size_t i = 0; i < freqs_mhz.size(); i += stride) {
    out.push_back(freqs_mhz[i]);
  }
  if (out.back() != freqs_mhz.back()) {
    out.push_back(freqs_mhz.back());
  }
  DSEM_ENSURE(std::is_sorted(out.begin(), out.end()),
              "sched: artifact frequency schedule must ascend");
  return out;
}

} // namespace

FrequencyPick pick_deadline_frequency(std::span<const double> time_s,
                                      std::span<const double> energy_j,
                                      double start_s, double deadline_s,
                                      double margin) {
  DSEM_ENSURE(time_s.size() == energy_j.size() && !time_s.empty(),
              "sched: candidate arrays must be non-empty and aligned");
  DSEM_ENSURE(margin > 0.0, "sched: margin must be > 0");
  FrequencyPick pick;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < time_s.size(); ++i) {
    if (start_s + margin * time_s[i] <= deadline_s &&
        energy_j[i] < best_energy) {
      best_energy = energy_j[i];
      pick.index = i;
      pick.feasible = true;
    }
  }
  if (!pick.feasible) {
    pick.index = time_s.size() - 1; // run-at-max fallback
  }
  return pick;
}

int place_first_fit(std::span<const double> rank_free_s) {
  DSEM_ENSURE(!rank_free_s.empty(), "sched: no ranks");
  std::size_t best = 0;
  for (std::size_t rank = 1; rank < rank_free_s.size(); ++rank) {
    if (rank_free_s[rank] < rank_free_s[best]) {
      best = rank;
    }
  }
  return static_cast<int>(best);
}

ClusterScheduler::ClusterScheduler(celerity::Cluster& cluster,
                                   const serve::ModelRegistry& registry,
                                   SchedConfig config)
    : cluster_(cluster), registry_(registry), config_(std::move(config)) {
  DSEM_ENSURE(config_.margin > 0.0, "sched: margin must be > 0");
  DSEM_ENSURE(config_.freq_stride >= 1, "sched: freq_stride must be >= 1");
}

std::vector<JobOutcome>
ClusterScheduler::run(std::span<const serve::TimedJob> jobs) {
  const auto wall_start = std::chrono::steady_clock::now();
  stats_ = SchedStats{};
  stats_.jobs = jobs.size();

  // Attribution-ledger sink, resolved once per run (see ServeLoop::run).
  obs::Ledger* const ledger =
      config_.ledger != nullptr
          ? config_.ledger
          : (obs::enabled() ? &obs::Ledger::global() : nullptr);

  ThreadPool& pool = config_.pool ? *config_.pool : ThreadPool::global();
  const sim::DeviceSpec& spec = cluster_.device(0).spec();
  const double default_mhz = cluster_.device(0).default_frequency();
  const bool model_driven = config_.frequency == FrequencyPolicy::kModel;

  // Resolve one immutable artifact snapshot per application up front —
  // like ServeLoop, decisions within one run never mix model versions.
  std::map<std::string,
           std::shared_ptr<const serve::ModelArtifact>> artifacts;
  if (model_driven) {
    for (const auto& job : jobs) {
      auto& slot = artifacts[job.spec.application];
      if (slot == nullptr) {
        slot = registry_.require(
            serve::ModelKey{job.spec.application, config_.device});
        DSEM_ENSURE(slot->is_advisable(),
                    "sched: scheduler requires a domain-specific or "
                    "hybrid model for " + slot->key.to_string());
      }
    }
  }

  // Baselines pin the cluster clock up front through the broadcast path
  // and honor what each rank actually reports: a rank that rejected the
  // request keeps — and is accounted at — its real clock.
  std::vector<double> rank_clock_mhz(
      static_cast<std::size_t>(cluster_.size()), 0.0);
  if (config_.frequency == FrequencyPolicy::kMaxClock) {
    const auto supported = cluster_.device(0).supported_frequencies();
    DSEM_ENSURE(!supported.empty(), "sched: device reports no frequencies");
    const double max_mhz =
        *std::max_element(supported.begin(), supported.end());
    for (const auto& result : cluster_.set_frequency_all(max_mhz)) {
      if (!result.ok) {
        ++stats_.clock_rejections;
      }
      rank_clock_mhz[static_cast<std::size_t>(result.rank)] =
          result.actual_mhz;
    }
  }

  // Phase 1 — parallel precompute into pre-sized slots: the deadline
  // (reference runtime at the default clock, noise-free) and, under the
  // model policy, the predicted time/energy curves over the candidates.
  std::vector<JobPlan> plans(jobs.size());
  parallel_for(pool, 0, jobs.size(), [&](std::size_t i) {
    const serve::TimedJob& job = jobs[i];
    JobPlan& plan = plans[i];

    const auto workload = serve::make_workload(job.spec);
    sim::Device ref_device(spec, sim::NoiseConfig::none(), 0);
    synergy::Device ref_synergy(ref_device);
    synergy::Queue ref_queue(ref_synergy, synergy::ExecMode::kSimOnly);
    ref_queue.set_profile_cache(&profile_cache_);
    workload->submit(ref_queue);
    plan.ref_time_s = ref_queue.total_time_s();
    plan.ref_energy_j = ref_queue.total_energy_j();
    plan.deadline_s = job.arrival_s + job.deadline_slack * plan.ref_time_s;

    if (model_driven) {
      // The model contributes the frequency *shape* (predicted speedup
      // and normalized energy, §4.2.3 — what the domain-specific family
      // is good at), anchored at the job's true default-clock reference
      // point so absolute-scale prediction bias cancels per job.
      const auto& artifact = *artifacts.at(job.spec.application);
      plan.cand_freqs_mhz =
          strided_candidates(artifact.freqs_mhz, config_.freq_stride);
      const core::Prediction pred =
          artifact.is_hybrid()
              ? artifact.hybrid->predict(*workload, spec,
                                         plan.cand_freqs_mhz,
                                         artifact.default_freq_mhz)
              : artifact.ds->predict(job.request.features,
                                     plan.cand_freqs_mhz,
                                     artifact.default_freq_mhz);
      plan.cand_time_s.reserve(pred.speedup.size());
      plan.cand_energy_j.reserve(pred.norm_energy.size());
      for (std::size_t k = 0; k < pred.speedup.size(); ++k) {
        DSEM_ENSURE(pred.speedup[k] > 0.0,
                    "sched: model predicted non-positive speedup");
        plan.cand_time_s.push_back(plan.ref_time_s / pred.speedup[k]);
        plan.cand_energy_j.push_back(plan.ref_energy_j *
                                     pred.norm_energy[k]);
      }
    }
  });

  // Phase 2 — sequential admission, placement, and execution in arrival
  // order. Each job runs on a replica device seeded by its trace index,
  // so its true cost at a given clock is identical on every rank, under
  // every policy, for every pool size.
  std::vector<JobOutcome> outcomes(jobs.size());
  std::vector<double> rank_free_s(
      static_cast<std::size_t>(cluster_.size()), 0.0);
  std::vector<double> rank_busy_s(rank_free_s.size(), 0.0);

  // Ledger attribution for one finalized outcome (appended in arrival
  // order, so the ledger stream is deterministic like the outcomes).
  const auto record_job = [&](std::size_t i, const JobOutcome& outcome) {
    const serve::TimedJob& job = jobs[i];
    obs::JobRecord record;
    record.index = static_cast<std::uint64_t>(i);
    record.id = obs::derive_record_id("job", record.index);
    record.application = job.spec.application;
    if (model_driven) {
      const auto& artifact = *artifacts.at(job.spec.application);
      record.model = artifact.key.to_string() + "@" + artifact.origin;
    }
    record.rank = outcome.rank;
    record.freq_mhz = outcome.freq_mhz;
    record.arrival_s = job.arrival_s;
    record.start_s = outcome.start_s;
    record.finish_s = outcome.finish_s;
    record.deadline_s = outcome.deadline_s;
    record.queue_wait_s =
        outcome.rejected ? 0.0 : outcome.start_s - job.arrival_s;
    record.predicted_time_s = outcome.predicted_time_s;
    record.predicted_energy_j = outcome.predicted_energy_j;
    record.true_time_s = outcome.true_time_s;
    record.true_energy_j = outcome.true_energy_j;
    if (model_driven && !outcome.rejected && outcome.true_time_s > 0.0 &&
        outcome.true_energy_j > 0.0) {
      record.time_residual =
          std::abs(outcome.predicted_time_s - outcome.true_time_s) /
          outcome.true_time_s;
      record.energy_residual =
          std::abs(outcome.predicted_energy_j - outcome.true_energy_j) /
          outcome.true_energy_j;
    }
    if (!outcome.rejected && outcome.deadline_s > job.arrival_s) {
      record.slack_consumed = (outcome.finish_s - job.arrival_s) /
                              (outcome.deadline_s - job.arrival_s);
    }
    record.infeasible = outcome.infeasible;
    record.rejected = outcome.rejected;
    record.missed = outcome.missed;
    // Miss-cause precedence (obs/ledger.hpp): infeasibility first, then
    // model error vs placement by whether the job would have missed even
    // starting at arrival. Baselines never consult a model, so a miss
    // the true runtime alone explains is an infeasible clock, not a
    // model error.
    if (outcome.missed) {
      if (outcome.infeasible) {
        record.cause = obs::MissCause::kInfeasible;
      } else if (job.arrival_s + outcome.true_time_s > outcome.deadline_s) {
        record.cause = model_driven ? obs::MissCause::kModelError
                                    : obs::MissCause::kInfeasible;
      } else {
        record.cause = obs::MissCause::kPlacement;
      }
    }
    ledger->add(std::move(record));
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const serve::TimedJob& job = jobs[i];
    const JobPlan& plan = plans[i];
    JobOutcome& outcome = outcomes[i];
    outcome.deadline_s = plan.deadline_s;

    // Placement + clock choice.
    int rank = -1;
    FrequencyPick pick;
    if (model_driven && config_.placement == Placement::kEnergyGreedy) {
      // Best (rank, clock) pair: prefer feasibility, then predicted
      // energy, then earlier start, then lower rank.
      for (int r = 0; r < cluster_.size(); ++r) {
        const double start =
            std::max(job.arrival_s, rank_free_s[static_cast<std::size_t>(r)]);
        const FrequencyPick p = pick_deadline_frequency(
            plan.cand_time_s, plan.cand_energy_j, start, plan.deadline_s,
            config_.margin);
        const bool better =
            rank < 0 ||
            (p.feasible && !pick.feasible) ||
            (p.feasible == pick.feasible &&
             plan.cand_energy_j[p.index] < plan.cand_energy_j[pick.index]);
        if (better) {
          rank = r;
          pick = p;
        }
      }
    } else {
      // First fit: earliest-available rank (baselines always use this —
      // without predictions there is no energy order to be greedy over).
      rank = place_first_fit(rank_free_s);
      if (model_driven) {
        const double start = std::max(
            job.arrival_s, rank_free_s[static_cast<std::size_t>(rank)]);
        pick = pick_deadline_frequency(plan.cand_time_s, plan.cand_energy_j,
                                       start, plan.deadline_s,
                                       config_.margin);
      }
    }

    if (model_driven && !pick.feasible) {
      outcome.infeasible = true;
      ++stats_.infeasible;
      if (config_.fallback == Fallback::kReject) {
        outcome.rejected = true;
        outcome.missed = true;
        ++stats_.rejected;
        ++stats_.misses;
        if (ledger != nullptr) {
          record_job(i, outcome);
        }
        continue;
      }
    }

    const auto rank_index = static_cast<std::size_t>(rank);
    outcome.rank = rank;
    outcome.start_s = std::max(job.arrival_s, rank_free_s[rank_index]);
    if (model_driven) {
      outcome.freq_mhz = plan.cand_freqs_mhz[pick.index];
      outcome.predicted_time_s = plan.cand_time_s[pick.index];
      outcome.predicted_energy_j = plan.cand_energy_j[pick.index];
    } else {
      outcome.freq_mhz = rank_clock_mhz[rank_index];
    }

    // True execution on the job's own replica (fault injection on the
    // cluster devices stays confined to the clock-broadcast path).
    sim::Device replica = cluster_.device(rank).simulated().replica(
        derive_seed(config_.seed, static_cast<std::uint64_t>(i)));
    replica.set_fault_config({});
    synergy::Device device(replica);
    synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
    queue.set_profile_cache(&profile_cache_);
    if (outcome.freq_mhz > 0.0) {
      queue.set_target_frequency(outcome.freq_mhz);
    }
    serve::make_workload(job.spec)->submit(queue);

    outcome.true_time_s = queue.total_time_s();
    outcome.true_energy_j = queue.total_energy_j();
    outcome.finish_s = outcome.start_s + outcome.true_time_s;
    outcome.missed = outcome.finish_s > outcome.deadline_s;

    rank_free_s[rank_index] = outcome.finish_s;
    rank_busy_s[rank_index] += outcome.true_time_s;
    stats_.busy_energy_j += outcome.true_energy_j;
    ++stats_.completed;
    if (outcome.missed) {
      ++stats_.misses;
    }
    stats_.makespan_s = std::max(stats_.makespan_s, outcome.finish_s);
    metrics::histogram("sched.turnaround_s",
                       outcome.finish_s - job.arrival_s);
    if (ledger != nullptr) {
      record_job(i, outcome);
    }
  }

  // Every job is either completed or rejected — the ledger's
  // reconciliation guarantee starts here.
  DSEM_ENSURE(stats_.completed + stats_.rejected == stats_.jobs,
              "sched: completed + rejected must equal jobs");

  // Idle draw closes the cluster energy account: every rank burns its
  // standing-clock idle power over its gaps up to the makespan.
  for (std::size_t r = 0; r < rank_free_s.size(); ++r) {
    const double idle_mhz =
        rank_clock_mhz[r] > 0.0 ? rank_clock_mhz[r] : default_mhz;
    const double idle_s = stats_.makespan_s - rank_busy_s[r];
    stats_.idle_energy_j += sim::idle_power_w(spec, idle_mhz) * idle_s;
  }
  stats_.energy_j = stats_.busy_energy_j + stats_.idle_energy_j;

  if (config_.frequency == FrequencyPolicy::kMaxClock) {
    cluster_.reset_frequency_all();
  }

  metrics::counter("sched.jobs", stats_.jobs);
  metrics::counter("sched.completed", stats_.completed);
  metrics::counter("sched.rejected", stats_.rejected);
  metrics::counter("sched.misses", stats_.misses);
  metrics::counter("sched.infeasible", stats_.infeasible);
  metrics::counter("sched.clock_rejections", stats_.clock_rejections);
  metrics::gauge("sched.energy_j", stats_.energy_j,
                 metrics::Reliability::kDeterministic);
  metrics::gauge("sched.busy_energy_j", stats_.busy_energy_j,
                 metrics::Reliability::kDeterministic);
  metrics::gauge("sched.idle_energy_j", stats_.idle_energy_j,
                 metrics::Reliability::kDeterministic);
  metrics::gauge("sched.makespan_s", stats_.makespan_s,
                 metrics::Reliability::kDeterministic);

  stats_.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  return outcomes;
}

} // namespace dsem::sched
