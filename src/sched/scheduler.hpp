// Deadline-aware cluster energy scheduler (ROADMAP item 2).
//
// Turns the domain-specific energy models into cluster-wide decisions, in
// the data-driven deadline-aware frequency-scaling direction of Ilager et
// al. (arXiv 2004.08177), over the Celerity-style cluster the paper uses
// for distributed Cronos (§6): a stream of heterogeneous jobs (LiGen
// screens, Cronos runs with varied grids and deadlines) is admitted in
// arrival order, placed on a rank, and — under the model-driven policy —
// run at the per-job core frequency the registered DS model predicts will
// meet the deadline at minimal energy. When no candidate frequency is
// feasible the scheduler falls back gracefully: run at the maximum
// candidate clock, or reject the job with a recorded deadline miss.
//
// The whole simulation runs in simulated time, like serve::ServeLoop, and
// is bit-identical for any DSEM_THREADS:
//  - Model inference is batched up front (one prediction per job, fanned
//    across the thread pool into pre-sized slots via predict_many).
//  - Admission, placement, and clock selection run serially in arrival
//    order over those precomputed predictions.
//  - Each job executes on a replica device whose noise stream is seeded
//    by the job's trace index alone — the same job costs the same time
//    and energy on any rank, under any policy, for any pool size.
// Jobs are rank-local (no cross-rank halo traffic): the cluster supplies
// the rank count, the device spec, and the broadcast clock control whose
// per-rank outcomes the baselines honor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "celerity/cluster.hpp"
#include "common/thread_pool.hpp"
#include "serve/registry.hpp"
#include "serve/traffic.hpp"
#include "sim/profile_cache.hpp"

namespace dsem::obs {
class Ledger;
} // namespace dsem::obs

namespace dsem::sched {

/// Where a job goes.
enum class Placement {
  kFirstFit,     ///< the earliest-available rank (lowest rank on ties)
  kEnergyGreedy, ///< the (rank, frequency) pair of minimal predicted energy
};

/// How a job's core clock is chosen.
enum class FrequencyPolicy {
  kModel,         ///< DS-model pick: cheapest candidate meeting the deadline
  kMaxClock,      ///< naive baseline: every rank pinned to the maximum clock
  kStaticDefault, ///< static governor baseline: default clocking everywhere
};

/// What happens when no candidate frequency meets the deadline.
enum class Fallback {
  kRunAtMax, ///< run at the maximum candidate clock anyway
  kReject,   ///< drop the job, recording a deadline miss
};

struct SchedConfig {
  /// Device half of the model-registry key (the cluster's rank spec name
  /// need not match; the key routes to the trained artifact).
  std::string device = "v100";
  Placement placement = Placement::kFirstFit;
  FrequencyPolicy frequency = FrequencyPolicy::kModel;
  Fallback fallback = Fallback::kRunAtMax;
  /// Safety factor on predicted time when testing deadline feasibility:
  /// feasible iff start + margin * predicted_time <= deadline. Margins
  /// above 1 hedge against model optimism (fewer misses, more energy);
  /// below 1 gamble on it (the example sweeps this into a Pareto front).
  double margin = 1.0;
  /// Candidate clocks = every `freq_stride`-th artifact frequency (the
  /// maximum is always included). Stride 1 plans over the full grid.
  std::size_t freq_stride = 4;
  /// Pool for the batched prediction pass; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Base seed of the per-job execution noise streams (derived by index).
  std::uint64_t seed = 0x5C4EDULL;
  /// Explicit attribution-ledger sink: when set, every job is recorded
  /// here regardless of obs::enabled(). When null, records go to
  /// obs::Ledger::global() iff the global switch is on (--ledger-out /
  /// DSEM_LEDGER). See obs/ledger.hpp.
  obs::Ledger* ledger = nullptr;
};

/// One job's fate. All times are simulated seconds.
struct JobOutcome {
  bool rejected = false;   ///< dropped at admission (Fallback::kReject)
  bool infeasible = false; ///< no candidate clock met the deadline
  bool missed = false;     ///< rejected, or finished past the deadline
  int rank = -1;           ///< -1 when rejected
  double freq_mhz = 0.0;   ///< executed clock; 0 = default clocking
  double deadline_s = 0.0;
  double start_s = 0.0;
  double finish_s = 0.0;
  double true_time_s = 0.0;
  double true_energy_j = 0.0;
  /// Model-policy predictions at the chosen clock (0 for baselines):
  /// the model's speedup / normalized-energy shape over frequency,
  /// anchored at the job's noise-free default-clock reference run so
  /// absolute-scale prediction bias cancels per job.
  double predicted_time_s = 0.0;
  double predicted_energy_j = 0.0;

  bool operator==(const JobOutcome&) const = default;
};

/// Aggregates over one run() call. Everything except wall_s is simulated
/// and deterministic for any DSEM_THREADS.
struct SchedStats {
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t misses = 0;     ///< rejected + finished-late
  std::uint64_t infeasible = 0; ///< jobs that needed the fallback
  /// set_frequency_all rejections the baselines observed (those ranks run
  /// at their actual, reported clock — never the one the broadcast asked
  /// for).
  std::uint64_t clock_rejections = 0;
  double busy_energy_j = 0.0;
  double idle_energy_j = 0.0; ///< idle draw over rank gaps up to makespan
  double energy_j = 0.0;      ///< busy + idle
  double makespan_s = 0.0;    ///< last completion
  double wall_s = 0.0;        ///< wall-clock run time (report only)

  double miss_rate() const noexcept {
    return jobs > 0 ? static_cast<double>(misses) / static_cast<double>(jobs)
                    : 0.0;
  }
};

/// The model-policy clock pick, exposed for hand-computed tests: over
/// parallel arrays of candidate (predicted time, predicted energy) —
/// index-aligned, ascending frequency — returns the index of the lowest
/// predicted energy whose margin-scaled completion meets the deadline.
/// When nothing qualifies, `feasible` is false and the index is the last
/// (maximum-frequency) candidate: the run-at-max fallback.
struct FrequencyPick {
  std::size_t index = 0;
  bool feasible = false;

  bool operator==(const FrequencyPick&) const = default;
};
FrequencyPick pick_deadline_frequency(std::span<const double> time_s,
                                      std::span<const double> energy_j,
                                      double start_s, double deadline_s,
                                      double margin);

/// First-fit placement: the rank with the earliest free time (the lowest
/// rank wins ties).
int place_first_fit(std::span<const double> rank_free_s);

class ClusterScheduler {
public:
  /// The registry must hold a domain-specific artifact under
  /// (application, config.device) for every application in the job
  /// stream when the model policy is active; the baselines never consult
  /// it. Both references must outlive the scheduler.
  ClusterScheduler(celerity::Cluster& cluster,
                   const serve::ModelRegistry& registry, SchedConfig config);

  /// Schedules `jobs` (ascending arrival_s) to completion. Outcomes are
  /// indexed by trace position. Stats are per call.
  std::vector<JobOutcome> run(std::span<const serve::TimedJob> jobs);

  const SchedStats& stats() const noexcept { return stats_; }

private:
  celerity::Cluster& cluster_;
  const serve::ModelRegistry& registry_;
  SchedConfig config_;
  sim::ProfileCache profile_cache_;
  SchedStats stats_;
};

} // namespace dsem::sched
