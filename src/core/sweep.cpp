#include "core/sweep.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "core/sweep_report.hpp"

namespace dsem::core {

namespace {

/// Per-grid-point outcome; assembled into FrequencySweep slots after the
/// parallel region so report aggregation stays serial and ordered.
struct PointResult {
  Measurement m;
  bool ok = true;
  RetryStats stats;
  std::string error;
};

} // namespace

std::vector<FrequencySweep> sweep_grid(synergy::Device& device,
                                       std::span<const SweepTask> tasks,
                                       std::span<const double> freqs,
                                       const SweepOptions& options) {
  DSEM_ENSURE(!tasks.empty(), "sweep_grid: no tasks");
  DSEM_ENSURE(options.repetitions >= 1, "repetitions must be >= 1");
  for (const SweepTask& task : tasks) {
    DSEM_ENSURE(static_cast<bool>(task.run), "sweep_grid: empty task");
  }

  std::vector<double> all_freqs;
  if (freqs.empty()) {
    all_freqs = device.supported_frequencies();
    freqs = all_freqs;
  }
  DSEM_ENSURE(!freqs.empty(), "sweep_grid: device supports no frequencies");

  // Grid layout: flat index = task * (freqs + 1) + k, where k == 0 is the
  // default-clock baseline and k >= 1 is freqs[k - 1]. The seed of each
  // point is a pure function of its flat index, so the result grid does
  // not depend on thread count or scheduling order.
  const sim::Device& base = device.simulated();
  const std::uint64_t base_seed = base.seed();
  const std::size_t stride = freqs.size() + 1;
  const std::size_t n = tasks.size() * stride;
  const double default_freq = device.default_frequency();

  const std::uint64_t cache_hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t cache_misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;

  std::vector<PointResult> grid(n);
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::global();
  trace::Span sweep_span("sweep.grid", trace::cat::kSweep);
  sweep_span.value(static_cast<double>(n));
  parallel_for(
      pool, 0, n,
      [&](std::size_t idx) {
        const std::size_t t = idx / stride;
        const std::size_t k = idx % stride;
        // Logical ROOT keyed by the flat grid index: everything this point
        // records (measure spans, retry counters, queue submits) gets a
        // (path, seq) that is a pure function of the grid coordinates.
        trace::Span point_span("sweep.point", trace::cat::kSweep, idx);
        point_span.value(k == 0 ? default_freq : freqs[k - 1]);
        PointResult& pr = grid[idx];
        sim::Device rep = base.replica(derive_seed(base_seed, idx));
        synergy::Device dev(rep);
        try {
          if (k == 0) {
            dev.reset_frequency();
          } else {
            set_frequency_with_retry(dev, freqs[k - 1], options.retry,
                                     &pr.stats);
          }
          pr.m = measure_run(dev, tasks[t].run, options.repetitions,
                             options.cache, options.retry, &pr.stats);
        } catch (const MeasurementError& error) {
          pr.ok = false;
          pr.m = {};
          pr.error = error.what();
          trace::instant("sweep.point_failed", trace::cat::kSweep);
        }
      },
      /*grain=*/1);

  if (trace::enabled() || metrics::enabled()) {
    std::uint64_t failed = 0;
    for (const PointResult& pr : grid) {
      failed += pr.ok ? 0 : 1;
    }
    trace::counter("sweep.grid_points", static_cast<double>(n));
    trace::counter("sweep.failed_points", static_cast<double>(failed));
    metrics::counter("sweep.grid_points", n);
    metrics::counter("sweep.failed_points", failed);
  }

  std::vector<FrequencySweep> out(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    FrequencySweep& fs = out[t];
    fs.default_freq_mhz = default_freq;
    const PointResult& base_pr = grid[t * stride];
    fs.baseline = base_pr.m;
    fs.baseline_ok = base_pr.ok;
    fs.baseline_attempts = base_pr.stats.attempts;
    fs.baseline_error = base_pr.error;
    fs.points.reserve(freqs.size());
    for (std::size_t k = 0; k < freqs.size(); ++k) {
      const PointResult& pr = grid[t * stride + k + 1];
      fs.points.push_back(
          {freqs[k], pr.m, pr.ok, pr.stats.attempts, pr.error});
    }
  }

  if (options.report != nullptr) {
    SweepReport& report = *options.report;
    report.grid_points += n;
    for (std::size_t idx = 0; idx < n; ++idx) {
      const PointResult& pr = grid[idx];
      report.retry.merge(pr.stats);
      if (!pr.ok) {
        ++report.failed_points;
        const std::size_t k = idx % stride;
        report.failures.push_back({idx / stride,
                                   k == 0 ? default_freq : freqs[k - 1],
                                   k == 0, pr.stats.attempts, pr.error});
      }
    }
    if (options.cache != nullptr) {
      report.cache_hits += options.cache->hits() - cache_hits_before;
      report.cache_misses += options.cache->misses() - cache_misses_before;
    }
  }
  return out;
}

FrequencySweep sweep_workload(synergy::Device& device,
                              const Workload& workload,
                              std::span<const double> freqs,
                              const SweepOptions& options) {
  const SweepTask task{[&](synergy::Queue& q) { workload.submit(q); }};
  std::vector<FrequencySweep> result =
      sweep_grid(device, std::span(&task, 1), freqs, options);
  return std::move(result.front());
}

std::vector<FrequencySweep> sweep_workloads(
    synergy::Device& device,
    std::span<const std::unique_ptr<Workload>> workloads,
    std::span<const double> freqs, const SweepOptions& options) {
  DSEM_ENSURE(!workloads.empty(), "sweep_workloads: no workloads");
  std::vector<SweepTask> tasks;
  tasks.reserve(workloads.size());
  for (const auto& w : workloads) {
    const Workload* workload = w.get();
    DSEM_ENSURE(workload != nullptr, "sweep_workloads: null workload");
    tasks.push_back({[workload](synergy::Queue& q) { workload->submit(q); }});
  }
  return sweep_grid(device, tasks, freqs, options);
}

} // namespace dsem::core
