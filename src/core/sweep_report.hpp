// Recovery accounting for resilient sweeps.
//
// A sweep over a faulty device (sim::FaultInjector) degrades gracefully:
// grid points that exhaust their RetryPolicy are recorded as failed, not
// fatal. The SweepReport collects what that resilience cost — attempts,
// retries, simulated backoff, the failed points themselves — plus the
// ProfileCache hit rate and per-phase wall time, so drivers can print one
// summary at the end of a pipeline.
//
// Determinism: every counter except the cache hit/miss split and phase
// wall times is a pure function of the device seed and the grid — safe to
// compare across DSEM_THREADS settings. The cache split depends on thread
// scheduling (concurrent first lookups of the same key may both miss) and
// is report-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/measurement.hpp"
#include "sim/fault.hpp"

namespace dsem {
class CliParser;
} // namespace dsem

namespace dsem::core {

/// One grid point that exhausted its retries.
struct FailedPoint {
  std::size_t task = 0;       ///< task (workload) index within its sweep
  double freq_mhz = 0.0;      ///< swept frequency; default clock if baseline
  bool baseline = false;      ///< true for the default-clock point
  std::uint64_t attempts = 0; ///< attempts spent before giving up
  std::string error;

  bool operator==(const FailedPoint&) const = default;
};

/// Aggregated over every sweep that ran with SweepOptions::report set.
struct SweepReport {
  std::uint64_t grid_points = 0;   ///< points attempted
  std::uint64_t failed_points = 0; ///< points that exhausted retries
  RetryStats retry;                ///< attempts / retries / faults / backoff
  std::uint64_t cache_hits = 0;    ///< scheduling-dependent; report-only
  std::uint64_t cache_misses = 0;  ///< scheduling-dependent; report-only
  std::vector<FailedPoint> failures; ///< grid order within each sweep

  struct Phase {
    std::string name;
    double seconds = 0.0; ///< wall time; report-only
  };
  std::vector<Phase> phases;

  double cache_hit_rate() const noexcept;
  void add_phase(std::string name, double seconds);
};

/// Human-readable multi-line summary.
void print_sweep_report(std::ostream& os, const SweepReport& report);

/// Serializes every field of the report (including the report-only cache
/// split and phase wall times — consumers filter by the determinism notes
/// above when comparing runs).
json::Value sweep_report_to_json(const SweepReport& report);

/// Schema tag of the per-invocation run manifest written via
/// --metrics-out (and embedded in BENCH_*.json pipeline entries).
inline constexpr const char* kRunSchema = "dsem-run-v1";

/// Builds the "dsem-run-v1" manifest: the sweep report (null for drivers
/// that do not keep one) plus the full metrics snapshot.
json::Value run_manifest(const std::string& program,
                         const SweepReport* report);

/// Registers the shared observability knobs on an example or bench CLI:
/// --trace-out (Chrome trace-event JSON), --metrics-out ("dsem-run-v1"
/// manifest), and --ledger-out ("dsem-ledger-v1" attribution ledger).
void add_observability_cli_options(CliParser& cli);

/// Turns the tracer, metrics registry, and/or attribution ledger on when
/// the corresponding flag was passed. Returns true when any
/// observability sink is active.
bool enable_observability_from_cli(const CliParser& cli);

/// Writes whatever the observability flags requested: the Chrome trace
/// (followed by its stdout summary table), the run manifest (followed by
/// the metrics snapshot table), and/or the attribution ledger. No-op for
/// flags left empty.
void write_observability_outputs(std::ostream& os, const CliParser& cli,
                                 const std::string& program,
                                 const SweepReport* report);

/// Registers the shared fault/retry knobs on an example or bench CLI:
/// --fault-rate, --fault-set-freq-rate, --fault-energy-drop-rate,
/// --fault-energy-garbage-rate, --fault-launch-rate, --retry-attempts,
/// --retry-backoff-s.
void add_fault_cli_options(CliParser& cli);

/// Builds the fault schedule the flags describe. --fault-rate seeds every
/// rate via FaultConfig::uniform; the per-kind flags then override.
sim::FaultConfig fault_config_from_cli(const CliParser& cli);

RetryPolicy retry_policy_from_cli(const CliParser& cli);

} // namespace dsem::core
