// Model-accuracy evaluation — the paper's §5.2 methodology.
//
// Fig. 13: leave-one-input-out cross-validation of the domain-specific
// models against the general-purpose baseline: for every held-out input,
// both models predict the speedup and normalized-energy curves over all
// frequencies and the MAPE against the measured curves is reported.
//
// Fig. 14: both models' predicted Pareto-optimal frequency sets for one
// input, evaluated at the *measured* objectives those frequencies achieve
// (the values one would obtain actually running the application there),
// compared against the true Pareto set.
#pragma once

#include "core/characterization.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/gp_model.hpp"
#include "core/hybrid_model.hpp"

namespace dsem {
class ThreadPool;
} // namespace dsem

namespace dsem::core {

struct AccuracyRow {
  std::string input;
  double gp_speedup_mape = 0.0;
  double ds_speedup_mape = 0.0;
  double gp_energy_mape = 0.0;
  double ds_energy_mape = 0.0;
};

struct AccuracyReport {
  std::vector<AccuracyRow> rows;

  /// min over rows of (gp_mape / ds_mape) for each objective — the
  /// paper's ">= 10x more accurate" claim is about this ratio.
  double worst_speedup_gain() const;
  double worst_energy_gain() const;
};

/// Ground-truth speedup / normalized-energy curves of one dataset group,
/// derived from its measured rows and default baseline.
struct TruthCurves {
  std::vector<double> freqs_mhz;
  std::vector<double> speedup;
  std::vector<double> norm_energy;
  std::vector<double> time_s;
  std::vector<double> energy_j;
};
TruthCurves truth_curves(const Dataset& dataset, int group);

/// Leave-one-input-out evaluation over the dataset's groups.
/// `workloads` must be the same list (same order) build_dataset consumed;
/// `report` selects which inputs appear in the output (empty = all).
/// `ds_prototype` is cloned per fold (null = Random Forest default).
AccuracyReport evaluate_accuracy(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const GeneralPurposeModel& gp,
    std::span<const std::string> report = {},
    const ml::Regressor* ds_prototype = nullptr);

struct ParetoEvaluation {
  TruthCurves truth;
  std::vector<std::size_t> true_front;
  std::vector<std::size_t> gp_front; ///< indices into truth arrays
  std::vector<std::size_t> ds_front;
  ParetoComparison gp_cmp;
  ParetoComparison ds_cmp;
};

/// Fig. 14 for one target input: models trained without it (DS) / on the
/// micro-benchmarks (GP) predict Pareto-optimal frequencies; the returned
/// fronts are evaluated at measured objectives.
ParetoEvaluation evaluate_pareto(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const std::string& target_input, const GeneralPurposeModel& gp,
    const ml::Regressor* ds_prototype = nullptr);

// ---------------------------------------------------------------------------
// Three-way evaluation: GP vs DS vs hybrid (the DSO-style third family).

struct ThreeWayAccuracyRow {
  std::string input;
  double gp_speedup_mape = 0.0;
  double ds_speedup_mape = 0.0;
  double hy_speedup_mape = 0.0;
  double gp_energy_mape = 0.0;
  double ds_energy_mape = 0.0;
  double hy_energy_mape = 0.0;
};

/// Per-family MAPE means over a report's rows, for table output.
struct ThreeWayMeans {
  double gp_speedup = 0.0;
  double ds_speedup = 0.0;
  double hy_speedup = 0.0;
  double gp_energy = 0.0;
  double ds_energy = 0.0;
  double hy_energy = 0.0;
};

struct ThreeWayAccuracyReport {
  std::vector<ThreeWayAccuracyRow> rows;
  ThreeWayMeans means() const;
};

/// Leave-one-input-out evaluation of all three model families at once.
/// Folds come from ml::leave_one_group_out over the dataset's group
/// labels; each fold trains a fresh DS and hybrid model on the fold's
/// training rows (hybrid features recomputed on `spec` per group) and
/// scores all three families against the held-out truth curves. Output is
/// bit-identical for any `pool` size (nullptr = global pool).
ThreeWayAccuracyReport evaluate_accuracy_three_way(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const GeneralPurposeModel& gp,
    std::span<const std::string> report = {},
    const ml::Regressor* ds_prototype = nullptr,
    const ml::Regressor* hybrid_prototype = nullptr,
    ThreadPool* pool = nullptr);

struct ThreeWayParetoEvaluation {
  TruthCurves truth;
  std::vector<std::size_t> true_front;
  std::vector<std::size_t> gp_front; ///< indices into truth arrays
  std::vector<std::size_t> ds_front;
  std::vector<std::size_t> hy_front;
  ParetoComparison gp_cmp;
  ParetoComparison ds_cmp;
  ParetoComparison hy_cmp;
};

/// Fig. 14 for one target input with all three families: models trained
/// without the target predict Pareto-optimal frequencies, judged at the
/// measured objectives those frequencies achieve.
ThreeWayParetoEvaluation evaluate_pareto_three_way(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const std::string& target_input,
    const GeneralPurposeModel& gp, const ml::Regressor* ds_prototype = nullptr,
    const ml::Regressor* hybrid_prototype = nullptr);

/// Extrapolation split per Afzal et al.: the `holdout_count` groups with
/// the largest total work (sum of work items over the workload's kernel
/// launches) are held out together; DS and hybrid train once on the
/// remaining groups and all three families are scored on the held-out
/// inputs. This probes prediction *beyond* the training size range, where
/// input-feature-only models must extrapolate but the hybrid family can
/// lean on its execution-model features.
struct ExtrapolationReport {
  std::vector<std::string> held_out; ///< group names, largest-work first
  ThreeWayAccuracyReport accuracy;   ///< one row per held-out group
};

ExtrapolationReport evaluate_extrapolation(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const GeneralPurposeModel& gp,
    std::size_t holdout_count = 1, const ml::Regressor* ds_prototype = nullptr,
    const ml::Regressor* hybrid_prototype = nullptr,
    ThreadPool* pool = nullptr);

} // namespace dsem::core
