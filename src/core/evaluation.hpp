// Model-accuracy evaluation — the paper's §5.2 methodology.
//
// Fig. 13: leave-one-input-out cross-validation of the domain-specific
// models against the general-purpose baseline: for every held-out input,
// both models predict the speedup and normalized-energy curves over all
// frequencies and the MAPE against the measured curves is reported.
//
// Fig. 14: both models' predicted Pareto-optimal frequency sets for one
// input, evaluated at the *measured* objectives those frequencies achieve
// (the values one would obtain actually running the application there),
// compared against the true Pareto set.
#pragma once

#include "core/characterization.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp"
#include "core/gp_model.hpp"

namespace dsem::core {

struct AccuracyRow {
  std::string input;
  double gp_speedup_mape = 0.0;
  double ds_speedup_mape = 0.0;
  double gp_energy_mape = 0.0;
  double ds_energy_mape = 0.0;
};

struct AccuracyReport {
  std::vector<AccuracyRow> rows;

  /// min over rows of (gp_mape / ds_mape) for each objective — the
  /// paper's ">= 10x more accurate" claim is about this ratio.
  double worst_speedup_gain() const;
  double worst_energy_gain() const;
};

/// Ground-truth speedup / normalized-energy curves of one dataset group,
/// derived from its measured rows and default baseline.
struct TruthCurves {
  std::vector<double> freqs_mhz;
  std::vector<double> speedup;
  std::vector<double> norm_energy;
  std::vector<double> time_s;
  std::vector<double> energy_j;
};
TruthCurves truth_curves(const Dataset& dataset, int group);

/// Leave-one-input-out evaluation over the dataset's groups.
/// `workloads` must be the same list (same order) build_dataset consumed;
/// `report` selects which inputs appear in the output (empty = all).
/// `ds_prototype` is cloned per fold (null = Random Forest default).
AccuracyReport evaluate_accuracy(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const GeneralPurposeModel& gp,
    std::span<const std::string> report = {},
    const ml::Regressor* ds_prototype = nullptr);

struct ParetoEvaluation {
  TruthCurves truth;
  std::vector<std::size_t> true_front;
  std::vector<std::size_t> gp_front; ///< indices into truth arrays
  std::vector<std::size_t> ds_front;
  ParetoComparison gp_cmp;
  ParetoComparison ds_cmp;
};

/// Fig. 14 for one target input: models trained without it (DS) / on the
/// micro-benchmarks (GP) predict Pareto-optimal frequencies; the returned
/// fronts are evaluated at measured objectives.
ParetoEvaluation evaluate_pareto(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const std::string& target_input, const GeneralPurposeModel& gp,
    const ml::Regressor* ds_prototype = nullptr);

} // namespace dsem::core
