// Time/energy measurement of workloads over frequency configurations.
//
// Mirrors the paper's experimental setup (§5.1): each configuration is
// executed and profiled through the SYnergy layer, repeated `repetitions`
// times (5 in the paper) and averaged to damp measurement noise.
#pragma once

#include <span>
#include <vector>

#include "core/workload.hpp"
#include "synergy/device.hpp"

namespace dsem::core {

struct Measurement {
  double time_s = 0.0;
  double energy_j = 0.0;
};

inline constexpr int kDefaultRepetitions = 5;

/// Runs `workload` with the core clock pinned at `freq_mhz`, averaging
/// `repetitions` runs. Restores the device default clock afterwards.
Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions = kDefaultRepetitions);

/// Same, at the device's default/auto clocking.
Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions = kDefaultRepetitions);

struct SweepPoint {
  double freq_mhz = 0.0;
  Measurement m;
};

/// Measures the workload at every frequency in `freqs` (all supported
/// frequencies when empty), plus nothing else — callers pair this with
/// measure_default for baselines.
std::vector<SweepPoint> sweep_frequencies(
    synergy::Device& device, const Workload& workload,
    int repetitions = kDefaultRepetitions, std::span<const double> freqs = {});

} // namespace dsem::core
