// Time/energy measurement of workloads over frequency configurations.
//
// Mirrors the paper's experimental setup (§5.1): each configuration is
// executed and profiled through the SYnergy layer, repeated `repetitions`
// times (5 in the paper) and averaged to damp measurement noise. All
// entry points optionally share a sim::ProfileCache so the noise-free
// cost of repeated (kernel, input, frequency) launches is derived once.
//
// Fault tolerance: every entry point absorbs transient device faults
// (sim::TransientFault — rejected frequency sets, aborted launches,
// garbage energy reads) by retrying under a bounded RetryPolicy with
// *simulated* backoff (accounted, never slept — results stay a pure
// function of the device seed). An operation that exhausts its retries
// throws MeasurementError; the sweep engine above turns that into a
// failed-grid-point record instead of aborting the sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "sim/profile_cache.hpp"
#include "synergy/device.hpp"

namespace dsem::core {

struct Measurement {
  double time_s = 0.0;
  double energy_j = 0.0;

  bool operator==(const Measurement&) const = default;
};

inline constexpr int kDefaultRepetitions = 5;

/// Bounded-retry recovery for transient device faults. Backoff is
/// simulated: the wait a real harness would sleep is accumulated in
/// RetryStats::simulated_backoff_s, keeping runs deterministic and fast.
struct RetryPolicy {
  int max_attempts = 3;         ///< first try + retries, per operation
  double backoff_base_s = 0.01; ///< simulated wait before the 1st retry
  double backoff_factor = 2.0;  ///< exponential growth per further retry

  /// Simulated wait after failed attempt number `attempt` (1-based).
  double backoff_for(int attempt) const noexcept {
    double wait = backoff_base_s;
    for (int i = 1; i < attempt; ++i) {
      wait *= backoff_factor;
    }
    return wait;
  }
};

/// Per-operation recovery accounting, aggregated by the sweep engine.
struct RetryStats {
  std::uint64_t attempts = 0; ///< operation attempts, including retries
  std::uint64_t retries = 0;  ///< attempts beyond the first
  std::uint64_t faults = 0;   ///< transient faults observed
  double simulated_backoff_s = 0.0;

  void merge(const RetryStats& other) noexcept {
    attempts += other.attempts;
    retries += other.retries;
    faults += other.faults;
    simulated_backoff_s += other.simulated_backoff_s;
  }
};

/// Thrown when an operation keeps faulting past RetryPolicy::max_attempts.
class MeasurementError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Pins the device clock, retrying rejected requests per `policy`.
/// Throws MeasurementError on exhaustion.
void set_frequency_with_retry(synergy::Device& device, double freq_mhz,
                              const RetryPolicy& policy = {},
                              RetryStats* stats = nullptr);

/// One application run as the measurement layer sees it: submits the full
/// kernel sequence into the queue exactly once.
using RunFn = std::function<void(synergy::Queue&)>;

/// Runs `run` at the device's current clocking, averaging `repetitions`
/// executions. The building block of every measurement below. Each
/// repetition retries per `retry` on transient faults or invalid totals;
/// throws MeasurementError when a repetition exhausts its attempts.
Measurement measure_run(synergy::Device& device, const RunFn& run,
                        int repetitions = kDefaultRepetitions,
                        sim::ProfileCache* cache = nullptr,
                        const RetryPolicy& retry = {},
                        RetryStats* stats = nullptr);

/// Runs `workload` with the core clock pinned at `freq_mhz`, averaging
/// `repetitions` runs. Restores the device default clock afterwards.
Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions = kDefaultRepetitions,
                    sim::ProfileCache* cache = nullptr,
                    const RetryPolicy& retry = {},
                    RetryStats* stats = nullptr);

/// Same, at the device's default/auto clocking.
Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions = kDefaultRepetitions,
                            sim::ProfileCache* cache = nullptr,
                            const RetryPolicy& retry = {},
                            RetryStats* stats = nullptr);

struct SweepPoint {
  double freq_mhz = 0.0;
  Measurement m;
  bool ok = true;             ///< false when retries were exhausted
  std::uint64_t attempts = 0; ///< measurement attempts, incl. retries
  std::string error;          ///< failure reason when !ok

  bool operator==(const SweepPoint&) const = default;
};

/// Measures the workload at every frequency in `freqs` (all supported
/// frequencies when empty), plus nothing else — callers pair this with
/// measure_default for baselines. Runs through the deterministic parallel
/// sweep engine (core/sweep.hpp) on the global thread pool.
std::vector<SweepPoint> sweep_frequencies(
    synergy::Device& device, const Workload& workload,
    int repetitions = kDefaultRepetitions, std::span<const double> freqs = {});

} // namespace dsem::core
