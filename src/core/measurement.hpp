// Time/energy measurement of workloads over frequency configurations.
//
// Mirrors the paper's experimental setup (§5.1): each configuration is
// executed and profiled through the SYnergy layer, repeated `repetitions`
// times (5 in the paper) and averaged to damp measurement noise. All
// entry points optionally share a sim::ProfileCache so the noise-free
// cost of repeated (kernel, input, frequency) launches is derived once.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/workload.hpp"
#include "sim/profile_cache.hpp"
#include "synergy/device.hpp"

namespace dsem::core {

struct Measurement {
  double time_s = 0.0;
  double energy_j = 0.0;

  bool operator==(const Measurement&) const = default;
};

inline constexpr int kDefaultRepetitions = 5;

/// One application run as the measurement layer sees it: submits the full
/// kernel sequence into the queue exactly once.
using RunFn = std::function<void(synergy::Queue&)>;

/// Runs `run` at the device's current clocking, averaging `repetitions`
/// executions. The building block of every measurement below.
Measurement measure_run(synergy::Device& device, const RunFn& run,
                        int repetitions = kDefaultRepetitions,
                        sim::ProfileCache* cache = nullptr);

/// Runs `workload` with the core clock pinned at `freq_mhz`, averaging
/// `repetitions` runs. Restores the device default clock afterwards.
Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions = kDefaultRepetitions,
                    sim::ProfileCache* cache = nullptr);

/// Same, at the device's default/auto clocking.
Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions = kDefaultRepetitions,
                            sim::ProfileCache* cache = nullptr);

struct SweepPoint {
  double freq_mhz = 0.0;
  Measurement m;

  bool operator==(const SweepPoint&) const = default;
};

/// Measures the workload at every frequency in `freqs` (all supported
/// frequencies when empty), plus nothing else — callers pair this with
/// measure_default for baselines. Runs through the deterministic parallel
/// sweep engine (core/sweep.hpp) on the global thread pool.
std::vector<SweepPoint> sweep_frequencies(
    synergy::Device& device, const Workload& workload,
    int repetitions = kDefaultRepetitions, std::span<const double> freqs = {});

} // namespace dsem::core
