#include "core/ds_model.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/features.hpp"
#include "core/pareto.hpp"
#include "ml/serialize.hpp"

namespace dsem::core {

std::vector<std::size_t> Prediction::pareto_indices() const {
  return pareto_front(speedup, norm_energy);
}

namespace {

ml::ForestParams default_forest_params() {
  ml::ForestParams params;
  params.n_estimators = 100; // sklearn defaults, which the paper's grid
  params.max_depth = 0;      // search found best
  params.seed = 0x05d5;
  return params;
}

} // namespace

DomainSpecificModel::DomainSpecificModel(const ml::Regressor& prototype,
                                         bool log_targets)
    : time_model_(prototype.clone()), energy_model_(prototype.clone()),
      log_targets_(log_targets) {}

DomainSpecificModel::DomainSpecificModel()
    : DomainSpecificModel(ml::RandomForestRegressor(default_forest_params())) {}

void DomainSpecificModel::train(const Dataset& dataset,
                                std::span<const std::size_t> rows) {
  DSEM_ENSURE(dataset.rows() > 0, "training on an empty dataset");
  trace::Span span("train.ds", trace::cat::kTrain);
  span.value(static_cast<double>(rows.empty() ? dataset.rows() : rows.size()));
  metrics::ScopedTimer timer("train.ds_s");
  std::vector<std::size_t> all;
  if (rows.empty()) {
    all.resize(dataset.rows());
    std::iota(all.begin(), all.end(), 0);
    rows = all;
  }
  const ml::Matrix x = dataset.x.gather_rows(rows);
  std::vector<double> t(rows.size());
  std::vector<double> e(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t[i] = dataset.time_s[rows[i]];
    e[i] = dataset.energy_j[rows[i]];
    DSEM_ENSURE(t[i] > 0.0 && e[i] > 0.0,
                "non-positive measurement in training data");
    if (log_targets_) {
      t[i] = std::log(t[i]);
      e[i] = std::log(e[i]);
    }
  }
  time_model_->fit(x, t);
  energy_model_->fit(x, e);
  trained_ = true;
}

json::Value DomainSpecificModel::to_json() const {
  DSEM_ENSURE(trained_, "serialize of an untrained DomainSpecificModel");
  auto out = json::Value::object();
  out.set("log_targets", log_targets_);
  out.set("time", ml::regressor_to_json(*time_model_));
  out.set("energy", ml::regressor_to_json(*energy_model_));
  return out;
}

DomainSpecificModel DomainSpecificModel::from_json(const json::Value& value) {
  DomainSpecificModel model;
  model.time_model_ = ml::regressor_from_json(value.at("time"));
  model.energy_model_ = ml::regressor_from_json(value.at("energy"));
  model.log_targets_ = value.at("log_targets").as_bool();
  model.trained_ = true;
  return model;
}

Prediction DomainSpecificModel::predict(std::span<const double> domain_features,
                                        std::span<const double> freqs_mhz,
                                        double default_freq_mhz) const {
  DSEM_ENSURE(trained_, "predict on an untrained DomainSpecificModel");
  DSEM_ENSURE(!freqs_mhz.empty(), "predict over an empty frequency list");

  Prediction out;
  out.freqs_mhz.assign(freqs_mhz.begin(), freqs_mhz.end());
  out.time_s.reserve(freqs_mhz.size());
  out.energy_j.reserve(freqs_mhz.size());

  // One batch for the whole frequency grid (baseline row last): each row
  // is an independent predict_one, so batching changes nothing but speed.
  ml::Matrix queries(freqs_mhz.size() + 1, domain_features.size() + 1);
  for (std::size_t i = 0; i <= freqs_mhz.size(); ++i) {
    auto row = queries.row(i);
    std::copy(domain_features.begin(), domain_features.end(), row.begin());
    row.back() = i < freqs_mhz.size() ? freqs_mhz[i] : default_freq_mhz;
  }
  std::vector<double> t_pred = time_model_->predict_many(queries);
  std::vector<double> e_pred = energy_model_->predict_many(queries);
  if (log_targets_) {
    for (double& t : t_pred) {
      t = std::exp(t);
    }
    for (double& e : e_pred) {
      e = std::exp(e);
    }
  }
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    out.time_s.push_back(t_pred[i]);
    out.energy_j.push_back(e_pred[i]);
  }

  const double t_base = t_pred.back();
  const double e_base = e_pred.back();
  DSEM_ENSURE(t_base > 0.0 && e_base > 0.0,
              "non-positive predicted baseline");

  out.speedup.reserve(freqs_mhz.size());
  out.norm_energy.reserve(freqs_mhz.size());
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    out.speedup.push_back(t_base / out.time_s[i]);
    out.norm_energy.push_back(out.energy_j[i] / e_base);
  }
  return out;
}

} // namespace dsem::core
