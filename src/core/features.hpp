// Feature engineering for the two model families.
//
// General-purpose (Table 1): the kernel's static instruction mix —
// normalized to fractions of total operations so micro-benchmarks and
// applications live in the same feature space regardless of per-item
// magnitude. By construction these carry *no input-size information*,
// which is the deficiency the paper demonstrates.
//
// Domain-specific (Table 2): the application's input parameters, taken
// verbatim from the workload (grid_x/y/z for Cronos; ligands, fragments,
// atoms for LiGen).
#pragma once

#include <string>
#include <vector>

#include "sim/kernel_profile.hpp"

namespace dsem::core {

/// Normalized static feature vector (Table 1 order): each of the 10
/// features divided by the sum of all 10 (memory features counted as
/// 4-byte accesses). Zero-work profiles are rejected.
std::vector<double> static_feature_vector(const sim::KernelProfile& profile);

/// Table 1 feature names, matching static_feature_vector's order.
std::vector<std::string> static_feature_names();

/// Appends `value` to a copy of `features` (the frequency column every
/// model row carries).
std::vector<double> with_frequency(std::vector<double> features,
                                   double freq_mhz);

} // namespace dsem::core
