#include "core/evaluation.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/statistics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "ml/model_selection.hpp"

namespace dsem::core {

double AccuracyReport::worst_speedup_gain() const {
  DSEM_ENSURE(!rows.empty(),
              "worst_speedup_gain over an empty accuracy report");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& r : rows) {
    worst = std::min(worst, r.gp_speedup_mape / std::max(r.ds_speedup_mape, 1e-12));
  }
  return worst;
}

double AccuracyReport::worst_energy_gain() const {
  DSEM_ENSURE(!rows.empty(),
              "worst_energy_gain over an empty accuracy report");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& r : rows) {
    worst = std::min(worst, r.gp_energy_mape / std::max(r.ds_energy_mape, 1e-12));
  }
  return worst;
}

TruthCurves truth_curves(const Dataset& dataset, int group) {
  const auto rows = dataset.rows_of_group(group);
  DSEM_ENSURE(!rows.empty(), "group has no rows");
  const Measurement base =
      dataset.group_default[static_cast<std::size_t>(group)];
  DSEM_ENSURE(base.time_s > 0.0 && base.energy_j > 0.0,
              "degenerate group baseline");

  TruthCurves out;
  const std::size_t freq_col = dataset.x.cols() - 1;
  for (std::size_t r : rows) {
    out.freqs_mhz.push_back(dataset.x(r, freq_col));
    out.time_s.push_back(dataset.time_s[r]);
    out.energy_j.push_back(dataset.energy_j[r]);
    out.speedup.push_back(base.time_s / dataset.time_s[r]);
    out.norm_energy.push_back(dataset.energy_j[r] / base.energy_j);
  }
  return out;
}

namespace {

std::vector<std::size_t> training_rows_excluding(const Dataset& dataset,
                                                 int held_out) {
  std::vector<std::size_t> rows;
  rows.reserve(dataset.rows());
  for (std::size_t i = 0; i < dataset.groups.size(); ++i) {
    if (dataset.groups[i] != held_out) {
      rows.push_back(i);
    }
  }
  DSEM_ENSURE(!rows.empty(), "LOOCV fold has no training rows");
  return rows;
}

DomainSpecificModel make_ds_model(const ml::Regressor* prototype) {
  return prototype ? DomainSpecificModel(*prototype) : DomainSpecificModel();
}

HybridModel make_hybrid_model(const ml::Regressor* prototype) {
  return prototype ? HybridModel(*prototype) : HybridModel();
}

} // namespace

AccuracyReport evaluate_accuracy(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const GeneralPurposeModel& gp, std::span<const std::string> report,
    const ml::Regressor* ds_prototype) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");

  // Default to every group that survived the sweep: groups whose baseline
  // or every frequency point failed (Dataset::group_ok == false) have no
  // truth curves and cannot be folds. Explicitly requested inputs are
  // still validated below — asking for a failed group is a caller error.
  std::vector<std::string> all_names;
  if (report.empty()) {
    for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
      if (dataset.group_ok(static_cast<int>(g))) {
        all_names.push_back(dataset.group_names[g]);
      }
    }
    DSEM_ENSURE(!all_names.empty(),
                "evaluate_accuracy: no usable dataset groups");
    report = all_names;
  }

  // Leave-one-input-out folds are independent: each trains its own DS
  // model on disjoint state and writes one pre-sized row. Folds run in
  // parallel on the global pool; the forest fits inside each fold nest on
  // the same pool without deadlock (blocked waiters execute queued tasks).
  AccuracyReport out;
  out.rows.resize(report.size());
  trace::Span loocv_span("loocv.evaluate", trace::cat::kEval);
  loocv_span.value(static_cast<double>(report.size()));
  parallel_for(
      ThreadPool::global(), 0, report.size(),
      [&](std::size_t i) {
        const std::string& name = report[i];
        // Logical ROOT per fold: the fold's training span and prediction
        // events key off the fold index, not the executing thread.
        trace::Span fold_span("loocv.fold", trace::cat::kEval, i);
        fold_span.arg(name);
        metrics::counter("loocv.folds");
        metrics::ScopedTimer fold_timer("loocv.fold_s");
        const int g = dataset.group_of(name);
        const auto ug = static_cast<std::size_t>(g);
        const Workload& workload = *workloads[ug];
        const TruthCurves truth = truth_curves(dataset, g);

        DomainSpecificModel ds = make_ds_model(ds_prototype);
        ds.train(dataset, training_rows_excluding(dataset, g));
        const Prediction ds_pred =
            ds.predict(workload.domain_features(), truth.freqs_mhz,
                       dataset.default_freq_mhz[ug]);
        const Prediction gp_pred =
            gp.predict(workload.aggregate_profile(), truth.freqs_mhz,
                       dataset.default_freq_mhz[ug]);

        AccuracyRow& row = out.rows[i];
        row.input = name;
        row.ds_speedup_mape = stats::mape(truth.speedup, ds_pred.speedup);
        row.ds_energy_mape =
            stats::mape(truth.norm_energy, ds_pred.norm_energy);
        row.gp_speedup_mape = stats::mape(truth.speedup, gp_pred.speedup);
        row.gp_energy_mape =
            stats::mape(truth.norm_energy, gp_pred.norm_energy);
      },
      /*grain=*/1);
  return out;
}

ParetoEvaluation evaluate_pareto(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const std::string& target_input, const GeneralPurposeModel& gp,
    const ml::Regressor* ds_prototype) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");
  const int g = dataset.group_of(target_input);
  DSEM_ENSURE(dataset.group_ok(g),
              "evaluate_pareto: target group unusable (failed sweep): " +
                  target_input);
  trace::Span span("pareto.evaluate", trace::cat::kEval);
  span.arg(target_input);
  metrics::ScopedTimer timer("eval.pareto_s");
  const auto ug = static_cast<std::size_t>(g);
  const Workload& workload = *workloads[ug];

  ParetoEvaluation out;
  out.truth = truth_curves(dataset, g);
  out.true_front = pareto_front(out.truth.speedup, out.truth.norm_energy);

  DomainSpecificModel ds = make_ds_model(ds_prototype);
  ds.train(dataset, training_rows_excluding(dataset, g));
  const Prediction ds_pred =
      ds.predict(workload.domain_features(), out.truth.freqs_mhz,
                 dataset.default_freq_mhz[ug]);
  const Prediction gp_pred =
      gp.predict(workload.aggregate_profile(), out.truth.freqs_mhz,
                 dataset.default_freq_mhz[ug]);

  // Predicted Pareto frequency sets come from the *predicted* objectives;
  // they are then judged at the *measured* objectives those frequencies
  // actually achieve (§5.2.2).
  out.ds_front = ds_pred.pareto_indices();
  out.gp_front = gp_pred.pareto_indices();
  out.ds_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.ds_front);
  out.gp_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.gp_front);
  return out;
}

ThreeWayMeans ThreeWayAccuracyReport::means() const {
  DSEM_ENSURE(!rows.empty(), "means over an empty three-way report");
  ThreeWayMeans m;
  for (const auto& r : rows) {
    m.gp_speedup += r.gp_speedup_mape;
    m.ds_speedup += r.ds_speedup_mape;
    m.hy_speedup += r.hy_speedup_mape;
    m.gp_energy += r.gp_energy_mape;
    m.ds_energy += r.ds_energy_mape;
    m.hy_energy += r.hy_energy_mape;
  }
  const auto n = static_cast<double>(rows.size());
  m.gp_speedup /= n;
  m.ds_speedup /= n;
  m.hy_speedup /= n;
  m.gp_energy /= n;
  m.ds_energy /= n;
  m.hy_energy /= n;
  return m;
}

namespace {

/// Scores all three families on one held-out group given its training
/// rows. The shared kernel of the three-way LOOCV and the extrapolation
/// split; each call trains on disjoint state and fills one pre-sized row.
void score_three_way_fold(const Dataset& dataset,
                          std::span<const std::unique_ptr<Workload>> workloads,
                          const sim::DeviceSpec& spec,
                          const GeneralPurposeModel& gp, int group,
                          std::span<const std::size_t> train_rows,
                          const ml::Regressor* ds_prototype,
                          const ml::Regressor* hybrid_prototype,
                          ThreeWayAccuracyRow& row) {
  const auto ug = static_cast<std::size_t>(group);
  const Workload& workload = *workloads[ug];
  const TruthCurves truth = truth_curves(dataset, group);

  DomainSpecificModel ds = make_ds_model(ds_prototype);
  ds.train(dataset, train_rows);
  HybridModel hybrid = make_hybrid_model(hybrid_prototype);
  hybrid.train(dataset, workloads, spec, train_rows);

  const double default_freq = dataset.default_freq_mhz[ug];
  const Prediction ds_pred =
      ds.predict(workload.domain_features(), truth.freqs_mhz, default_freq);
  const Prediction hy_pred =
      hybrid.predict(workload, spec, truth.freqs_mhz, default_freq);
  const Prediction gp_pred =
      gp.predict(workload.aggregate_profile(), truth.freqs_mhz, default_freq);

  row.input = dataset.group_names[ug];
  row.ds_speedup_mape = stats::mape(truth.speedup, ds_pred.speedup);
  row.ds_energy_mape = stats::mape(truth.norm_energy, ds_pred.norm_energy);
  row.hy_speedup_mape = stats::mape(truth.speedup, hy_pred.speedup);
  row.hy_energy_mape = stats::mape(truth.norm_energy, hy_pred.norm_energy);
  row.gp_speedup_mape = stats::mape(truth.speedup, gp_pred.speedup);
  row.gp_energy_mape = stats::mape(truth.norm_energy, gp_pred.norm_energy);
}

} // namespace

ThreeWayAccuracyReport evaluate_accuracy_three_way(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const GeneralPurposeModel& gp,
    std::span<const std::string> report, const ml::Regressor* ds_prototype,
    const ml::Regressor* hybrid_prototype, ThreadPool* pool) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");

  // Folds come from ml::model_selection: one split per distinct group
  // label, the held-out group's rows forming the test set. Groups that
  // never produced rows (failed sweeps) have no label and thus no fold;
  // groups with rows but a failed baseline are filtered below.
  const std::vector<ml::Split> splits =
      ml::leave_one_group_out(dataset.groups);
  std::vector<const ml::Split*> folds;
  for (const ml::Split& s : splits) {
    const int g = dataset.groups[s.test.front()];
    if (!dataset.group_ok(g)) {
      continue;
    }
    if (!report.empty() &&
        std::find(report.begin(), report.end(),
                  dataset.group_names[static_cast<std::size_t>(g)]) ==
            report.end()) {
      continue;
    }
    folds.push_back(&s);
  }
  DSEM_ENSURE(!folds.empty(), "three-way evaluation has no usable folds");

  ThreeWayAccuracyReport out;
  out.rows.resize(folds.size());
  trace::Span loocv_span("loocv.evaluate3", trace::cat::kEval);
  loocv_span.value(static_cast<double>(folds.size()));
  parallel_for(
      pool != nullptr ? *pool : ThreadPool::global(), 0, folds.size(),
      [&](std::size_t i) {
        trace::Span fold_span("loocv.fold3", trace::cat::kEval, i);
        metrics::counter("loocv.folds3");
        metrics::ScopedTimer fold_timer("loocv.fold3_s");
        const ml::Split& split = *folds[i];
        const int g = dataset.groups[split.test.front()];
        fold_span.arg(dataset.group_names[static_cast<std::size_t>(g)]);
        score_three_way_fold(dataset, workloads, spec, gp, g, split.train,
                             ds_prototype, hybrid_prototype, out.rows[i]);
      },
      /*grain=*/1);
  return out;
}

ThreeWayParetoEvaluation evaluate_pareto_three_way(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const std::string& target_input,
    const GeneralPurposeModel& gp, const ml::Regressor* ds_prototype,
    const ml::Regressor* hybrid_prototype) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");
  const int g = dataset.group_of(target_input);
  DSEM_ENSURE(dataset.group_ok(g),
              "evaluate_pareto_three_way: target group unusable (failed "
              "sweep): " +
                  target_input);
  trace::Span span("pareto.evaluate3", trace::cat::kEval);
  span.arg(target_input);
  metrics::ScopedTimer timer("eval.pareto3_s");
  const auto ug = static_cast<std::size_t>(g);
  const Workload& workload = *workloads[ug];

  ThreeWayParetoEvaluation out;
  out.truth = truth_curves(dataset, g);
  out.true_front = pareto_front(out.truth.speedup, out.truth.norm_energy);

  const std::vector<std::size_t> train_rows =
      training_rows_excluding(dataset, g);
  DomainSpecificModel ds = make_ds_model(ds_prototype);
  ds.train(dataset, train_rows);
  HybridModel hybrid = make_hybrid_model(hybrid_prototype);
  hybrid.train(dataset, workloads, spec, train_rows);

  const double default_freq = dataset.default_freq_mhz[ug];
  const Prediction ds_pred = ds.predict(workload.domain_features(),
                                        out.truth.freqs_mhz, default_freq);
  const Prediction hy_pred =
      hybrid.predict(workload, spec, out.truth.freqs_mhz, default_freq);
  const Prediction gp_pred = gp.predict(workload.aggregate_profile(),
                                        out.truth.freqs_mhz, default_freq);

  out.ds_front = ds_pred.pareto_indices();
  out.hy_front = hy_pred.pareto_indices();
  out.gp_front = gp_pred.pareto_indices();
  out.ds_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.ds_front);
  out.hy_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.hy_front);
  out.gp_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.gp_front);
  return out;
}

ExtrapolationReport evaluate_extrapolation(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const sim::DeviceSpec& spec, const GeneralPurposeModel& gp,
    std::size_t holdout_count, const ml::Regressor* ds_prototype,
    const ml::Regressor* hybrid_prototype, ThreadPool* pool) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");
  DSEM_ENSURE(holdout_count >= 1, "extrapolation needs a non-empty holdout");

  // Rank usable groups by total work (sum of work items over the
  // workload's launch classes): the largest inputs become the held-out
  // extrapolation set, everything smaller the training range.
  std::vector<std::pair<double, int>> by_work;
  for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
    if (!dataset.group_ok(static_cast<int>(g))) {
      continue;
    }
    double work = 0.0;
    for (const KernelLaunch& l : workloads[g]->kernel_launches()) {
      work += static_cast<double>(l.work_items) * l.launches;
    }
    by_work.emplace_back(work, static_cast<int>(g));
  }
  DSEM_ENSURE(by_work.size() > holdout_count,
              "extrapolation holdout would leave no training groups");
  std::sort(by_work.begin(), by_work.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  by_work.resize(holdout_count);

  std::vector<bool> held(dataset.num_groups(), false);
  ExtrapolationReport out;
  for (const auto& [work, g] : by_work) {
    held[static_cast<std::size_t>(g)] = true;
    out.held_out.push_back(dataset.group_names[static_cast<std::size_t>(g)]);
  }

  std::vector<std::size_t> train_rows;
  train_rows.reserve(dataset.rows());
  for (std::size_t i = 0; i < dataset.groups.size(); ++i) {
    if (!held[static_cast<std::size_t>(dataset.groups[i])]) {
      train_rows.push_back(i);
    }
  }
  DSEM_ENSURE(!train_rows.empty(), "extrapolation split has no training rows");

  trace::Span span("extrapolation.evaluate", trace::cat::kEval);
  span.value(static_cast<double>(holdout_count));
  metrics::ScopedTimer timer("eval.extrapolation_s");
  out.accuracy.rows.resize(by_work.size());
  parallel_for(
      pool != nullptr ? *pool : ThreadPool::global(), 0, by_work.size(),
      [&](std::size_t i) {
        score_three_way_fold(dataset, workloads, spec, gp, by_work[i].second,
                             train_rows, ds_prototype, hybrid_prototype,
                             out.accuracy.rows[i]);
      },
      /*grain=*/1);
  return out;
}

} // namespace dsem::core
