#include "core/evaluation.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/statistics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace dsem::core {

double AccuracyReport::worst_speedup_gain() const {
  DSEM_ENSURE(!rows.empty(),
              "worst_speedup_gain over an empty accuracy report");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& r : rows) {
    worst = std::min(worst, r.gp_speedup_mape / std::max(r.ds_speedup_mape, 1e-12));
  }
  return worst;
}

double AccuracyReport::worst_energy_gain() const {
  DSEM_ENSURE(!rows.empty(),
              "worst_energy_gain over an empty accuracy report");
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& r : rows) {
    worst = std::min(worst, r.gp_energy_mape / std::max(r.ds_energy_mape, 1e-12));
  }
  return worst;
}

TruthCurves truth_curves(const Dataset& dataset, int group) {
  const auto rows = dataset.rows_of_group(group);
  DSEM_ENSURE(!rows.empty(), "group has no rows");
  const Measurement base =
      dataset.group_default[static_cast<std::size_t>(group)];
  DSEM_ENSURE(base.time_s > 0.0 && base.energy_j > 0.0,
              "degenerate group baseline");

  TruthCurves out;
  const std::size_t freq_col = dataset.x.cols() - 1;
  for (std::size_t r : rows) {
    out.freqs_mhz.push_back(dataset.x(r, freq_col));
    out.time_s.push_back(dataset.time_s[r]);
    out.energy_j.push_back(dataset.energy_j[r]);
    out.speedup.push_back(base.time_s / dataset.time_s[r]);
    out.norm_energy.push_back(dataset.energy_j[r] / base.energy_j);
  }
  return out;
}

namespace {

std::vector<std::size_t> training_rows_excluding(const Dataset& dataset,
                                                 int held_out) {
  std::vector<std::size_t> rows;
  rows.reserve(dataset.rows());
  for (std::size_t i = 0; i < dataset.groups.size(); ++i) {
    if (dataset.groups[i] != held_out) {
      rows.push_back(i);
    }
  }
  DSEM_ENSURE(!rows.empty(), "LOOCV fold has no training rows");
  return rows;
}

DomainSpecificModel make_ds_model(const ml::Regressor* prototype) {
  return prototype ? DomainSpecificModel(*prototype) : DomainSpecificModel();
}

} // namespace

AccuracyReport evaluate_accuracy(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const GeneralPurposeModel& gp, std::span<const std::string> report,
    const ml::Regressor* ds_prototype) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");

  // Default to every group that survived the sweep: groups whose baseline
  // or every frequency point failed (Dataset::group_ok == false) have no
  // truth curves and cannot be folds. Explicitly requested inputs are
  // still validated below — asking for a failed group is a caller error.
  std::vector<std::string> all_names;
  if (report.empty()) {
    for (std::size_t g = 0; g < dataset.num_groups(); ++g) {
      if (dataset.group_ok(static_cast<int>(g))) {
        all_names.push_back(dataset.group_names[g]);
      }
    }
    DSEM_ENSURE(!all_names.empty(),
                "evaluate_accuracy: no usable dataset groups");
    report = all_names;
  }

  // Leave-one-input-out folds are independent: each trains its own DS
  // model on disjoint state and writes one pre-sized row. Folds run in
  // parallel on the global pool; the forest fits inside each fold nest on
  // the same pool without deadlock (blocked waiters execute queued tasks).
  AccuracyReport out;
  out.rows.resize(report.size());
  trace::Span loocv_span("loocv.evaluate", trace::cat::kEval);
  loocv_span.value(static_cast<double>(report.size()));
  parallel_for(
      ThreadPool::global(), 0, report.size(),
      [&](std::size_t i) {
        const std::string& name = report[i];
        // Logical ROOT per fold: the fold's training span and prediction
        // events key off the fold index, not the executing thread.
        trace::Span fold_span("loocv.fold", trace::cat::kEval, i);
        fold_span.arg(name);
        metrics::counter("loocv.folds");
        metrics::ScopedTimer fold_timer("loocv.fold_s");
        const int g = dataset.group_of(name);
        const auto ug = static_cast<std::size_t>(g);
        const Workload& workload = *workloads[ug];
        const TruthCurves truth = truth_curves(dataset, g);

        DomainSpecificModel ds = make_ds_model(ds_prototype);
        ds.train(dataset, training_rows_excluding(dataset, g));
        const Prediction ds_pred =
            ds.predict(workload.domain_features(), truth.freqs_mhz,
                       dataset.default_freq_mhz[ug]);
        const Prediction gp_pred =
            gp.predict(workload.aggregate_profile(), truth.freqs_mhz,
                       dataset.default_freq_mhz[ug]);

        AccuracyRow& row = out.rows[i];
        row.input = name;
        row.ds_speedup_mape = stats::mape(truth.speedup, ds_pred.speedup);
        row.ds_energy_mape =
            stats::mape(truth.norm_energy, ds_pred.norm_energy);
        row.gp_speedup_mape = stats::mape(truth.speedup, gp_pred.speedup);
        row.gp_energy_mape =
            stats::mape(truth.norm_energy, gp_pred.norm_energy);
      },
      /*grain=*/1);
  return out;
}

ParetoEvaluation evaluate_pareto(
    const Dataset& dataset,
    std::span<const std::unique_ptr<Workload>> workloads,
    const std::string& target_input, const GeneralPurposeModel& gp,
    const ml::Regressor* ds_prototype) {
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "workload list does not match dataset groups");
  const int g = dataset.group_of(target_input);
  DSEM_ENSURE(dataset.group_ok(g),
              "evaluate_pareto: target group unusable (failed sweep): " +
                  target_input);
  trace::Span span("pareto.evaluate", trace::cat::kEval);
  span.arg(target_input);
  metrics::ScopedTimer timer("eval.pareto_s");
  const auto ug = static_cast<std::size_t>(g);
  const Workload& workload = *workloads[ug];

  ParetoEvaluation out;
  out.truth = truth_curves(dataset, g);
  out.true_front = pareto_front(out.truth.speedup, out.truth.norm_energy);

  DomainSpecificModel ds = make_ds_model(ds_prototype);
  ds.train(dataset, training_rows_excluding(dataset, g));
  const Prediction ds_pred =
      ds.predict(workload.domain_features(), out.truth.freqs_mhz,
                 dataset.default_freq_mhz[ug]);
  const Prediction gp_pred =
      gp.predict(workload.aggregate_profile(), out.truth.freqs_mhz,
                 dataset.default_freq_mhz[ug]);

  // Predicted Pareto frequency sets come from the *predicted* objectives;
  // they are then judged at the *measured* objectives those frequencies
  // actually achieve (§5.2.2).
  out.ds_front = ds_pred.pareto_indices();
  out.gp_front = gp_pred.pareto_indices();
  out.ds_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.ds_front);
  out.gp_cmp = compare_pareto(out.truth.speedup, out.truth.norm_energy,
                              out.true_front, out.gp_front);
  return out;
}

} // namespace dsem::core
