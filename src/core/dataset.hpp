// Training datasets for the domain-specific models.
//
// One row per (input, frequency) pair: D = { s : s = (f⃗, c, t, e) } in the
// paper's notation (§4.2.2). Rows carry a group id per input so
// leave-one-input-out cross-validation can hold out all frequency samples
// of one input together.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/measurement.hpp"
#include "core/sweep.hpp"
#include "ml/matrix.hpp"

namespace dsem::core {

struct Dataset {
  ml::Matrix x;                ///< [domain features..., freq_mhz]
  std::vector<double> time_s;  ///< measured execution time
  std::vector<double> energy_j;///< measured energy
  std::vector<int> groups;     ///< input (workload) id per row
  std::vector<std::string> group_names;    ///< group id -> workload name
  std::vector<Measurement> group_default;  ///< measured default baseline
  std::vector<double> default_freq_mhz;    ///< per group

  std::size_t rows() const noexcept { return time_s.size(); }
  std::size_t num_groups() const noexcept { return group_names.size(); }

  /// Row indices of one group.
  std::vector<std::size_t> rows_of_group(int group) const;

  /// Group id by workload name; throws if absent.
  int group_of(const std::string& name) const;

  /// False when the group's sweep degraded past usability: its baseline
  /// exhausted retries (group_default is the {0, 0} placeholder) or every
  /// frequency point failed. Such groups keep their id slot — group ids
  /// always equal workload indices — but contribute no training rows and
  /// must be skipped by evaluation.
  bool group_ok(int group) const;
};

/// Measures every workload at every frequency in `freqs` (all supported
/// when empty), `repetitions` times each, plus the default-clock baseline.
/// The (workload x frequency) grid runs through the deterministic parallel
/// sweep engine (core/sweep.hpp): identical output for any pool size.
Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      const SweepOptions& options,
                      std::span<const double> freqs = {});

/// Convenience overload: default sweep options with `repetitions` and a
/// sweep-local profile cache.
Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      int repetitions = kDefaultRepetitions,
                      std::span<const double> freqs = {});

inline constexpr const char* kDatasetSchema = "dsem-dataset-v1";

/// Serializes a dataset as a "dsem-dataset-v1" document (deterministic:
/// %.17g doubles, insertion-ordered keys — byte-stable round-trips). This
/// is how golden evaluation datasets are pinned under tests/data/ and how
/// `frequency_advisor --dataset-out` exports a sweep.
json::Value dataset_to_json(const Dataset& dataset);

/// Parses a "dsem-dataset-v1" document; schema mismatches and malformed
/// payloads raise contract_error.
Dataset dataset_from_json(const json::Value& value);

/// File variants: pretty-printed JSON with a trailing newline.
void save_dataset(const Dataset& dataset, const std::string& path);
Dataset load_dataset(const std::string& path);

} // namespace dsem::core
