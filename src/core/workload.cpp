#include "core/workload.hpp"

#include "common/error.hpp"
#include "cronos/kernels.hpp"
#include "cronos/solver.hpp"
#include "ligen/kernels.hpp"

namespace dsem::core {

CronosWorkload::CronosWorkload(cronos::GridDims dims, int steps, int num_vars)
    : dims_(dims), steps_(steps), num_vars_(num_vars) {
  DSEM_ENSURE(steps >= 1, "CronosWorkload needs at least one step");
  DSEM_ENSURE(num_vars >= 1 && num_vars <= cronos::kMaxVars,
              "unsupported variable count");
}

std::vector<double> CronosWorkload::domain_features() const {
  return {static_cast<double>(dims_.nx), static_cast<double>(dims_.ny),
          static_cast<double>(dims_.nz)};
}

std::vector<std::string> CronosWorkload::feature_names() const {
  return {"grid_x", "grid_y", "grid_z"};
}

void CronosWorkload::submit(synergy::Queue& queue) const {
  cronos::submit_step_kernels(queue, dims_, num_vars_, steps_);
}

sim::KernelProfile CronosWorkload::aggregate_profile() const {
  const std::size_t cells = dims_.cell_count();
  const std::size_t ghosts = cronos::ghost_cell_count(dims_);
  // Work-item-weighted per-item average over one step's kernel launches
  // (the step structure is identical across steps, so one step suffices).
  sim::KernelProfile agg;
  agg.name = "cronos::aggregate";
  double items = 0.0;
  const auto add = [&](const sim::KernelProfile& p, std::size_t w) {
    agg.accumulate(p.scaled(static_cast<double>(w)));
    items += static_cast<double>(w);
  };
  add(cronos::compute_changes_profile(num_vars_), cells);
  add(cronos::cfl_reduce_profile(), cells);
  add(cronos::integrate_time_profile(num_vars_), cells);
  add(cronos::apply_boundary_profile(num_vars_), ghosts);
  return agg.scaled(1.0 / items);
}

LigenWorkload::LigenWorkload(int ligands, int atoms, int fragments,
                             ligen::DockingParams params,
                             std::size_t batch_size)
    : ligands_(ligands), atoms_(atoms), fragments_(fragments),
      params_(params), batch_size_(batch_size) {
  DSEM_ENSURE(ligands >= 1, "LigenWorkload needs at least one ligand");
  DSEM_ENSURE(atoms >= 2, "ligands need at least two atoms");
  DSEM_ENSURE(fragments >= 1, "ligands have at least one fragment");
  ligen::validate(params_);
  DSEM_ENSURE(batch_size >= 1, "batch size must be >= 1");
}

std::string LigenWorkload::name() const {
  // Paper convention: atoms x fragments x ligands.
  return std::to_string(atoms_) + "x" + std::to_string(fragments_) + "x" +
         std::to_string(ligands_);
}

std::vector<double> LigenWorkload::domain_features() const {
  return {static_cast<double>(ligands_), static_cast<double>(fragments_),
          static_cast<double>(atoms_)};
}

std::vector<std::string> LigenWorkload::feature_names() const {
  return {"ligands", "fragments", "atoms"};
}

void LigenWorkload::submit(synergy::Queue& queue) const {
  ligen::submit_screening_kernels(queue,
                                  static_cast<std::size_t>(ligands_), atoms_,
                                  fragments_, params_, batch_size_);
}

sim::KernelProfile LigenWorkload::aggregate_profile() const {
  sim::KernelProfile agg;
  agg.name = "ligen::aggregate";
  // Dock and score kernels both run once per ligand.
  agg.accumulate(ligen::dock_profile(atoms_, fragments_, params_));
  agg.accumulate(ligen::score_profile(atoms_, params_));
  return agg.scaled(0.5);
}

} // namespace dsem::core
