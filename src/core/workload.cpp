#include "core/workload.hpp"

#include <cmath>

#include "common/error.hpp"
#include "cronos/kernels.hpp"
#include "cronos/solver.hpp"
#include "ligen/kernels.hpp"

namespace dsem::core {

CronosWorkload::CronosWorkload(cronos::GridDims dims, int steps, int num_vars)
    : dims_(dims), steps_(steps), num_vars_(num_vars) {
  DSEM_ENSURE(steps >= 1, "CronosWorkload needs at least one step");
  DSEM_ENSURE(num_vars >= 1 && num_vars <= cronos::kMaxVars,
              "unsupported variable count");
}

std::vector<double> CronosWorkload::domain_features() const {
  return {static_cast<double>(dims_.nx), static_cast<double>(dims_.ny),
          static_cast<double>(dims_.nz)};
}

std::vector<std::string> CronosWorkload::feature_names() const {
  return {"grid_x", "grid_y", "grid_z"};
}

void CronosWorkload::submit(synergy::Queue& queue) const {
  cronos::submit_step_kernels(queue, dims_, num_vars_, steps_);
}

sim::KernelProfile CronosWorkload::aggregate_profile() const {
  const std::size_t cells = dims_.cell_count();
  const std::size_t ghosts = cronos::ghost_cell_count(dims_);
  // Work-item-weighted per-item average over one step's kernel launches
  // (the step structure is identical across steps, so one step suffices).
  sim::KernelProfile agg;
  agg.name = "cronos::aggregate";
  double items = 0.0;
  const auto add = [&](const sim::KernelProfile& p, std::size_t w) {
    agg.accumulate(p.scaled(static_cast<double>(w)));
    items += static_cast<double>(w);
  };
  add(cronos::compute_changes_profile(num_vars_), cells);
  add(cronos::cfl_reduce_profile(), cells);
  add(cronos::integrate_time_profile(num_vars_), cells);
  add(cronos::apply_boundary_profile(num_vars_), ghosts);
  return agg.scaled(1.0 / items);
}

std::vector<KernelLaunch> CronosWorkload::kernel_launches() const {
  const std::size_t cells = dims_.cell_count();
  const std::size_t ghosts = cronos::ghost_cell_count(dims_);
  // Every step runs three RK substeps of the same four kernels
  // (cronos::submit_step_kernels).
  const double per_run = 3.0 * static_cast<double>(steps_);
  return {{cronos::compute_changes_profile(num_vars_), cells, per_run},
          {cronos::cfl_reduce_profile(), cells, per_run},
          {cronos::integrate_time_profile(num_vars_), cells, per_run},
          {cronos::apply_boundary_profile(num_vars_), ghosts, per_run}};
}

LigenWorkload::LigenWorkload(int ligands, int atoms, int fragments,
                             ligen::DockingParams params,
                             std::size_t batch_size)
    : ligands_(ligands), atoms_(atoms), fragments_(fragments),
      params_(params), batch_size_(batch_size) {
  DSEM_ENSURE(ligands >= 1, "LigenWorkload needs at least one ligand");
  DSEM_ENSURE(atoms >= 2, "ligands need at least two atoms");
  DSEM_ENSURE(fragments >= 1, "ligands have at least one fragment");
  ligen::validate(params_);
  DSEM_ENSURE(batch_size >= 1, "batch size must be >= 1");
}

std::string LigenWorkload::name() const {
  // Paper convention: atoms x fragments x ligands.
  return std::to_string(atoms_) + "x" + std::to_string(fragments_) + "x" +
         std::to_string(ligands_);
}

std::vector<double> LigenWorkload::domain_features() const {
  return {static_cast<double>(ligands_), static_cast<double>(fragments_),
          static_cast<double>(atoms_)};
}

std::vector<std::string> LigenWorkload::feature_names() const {
  return {"ligands", "fragments", "atoms"};
}

void LigenWorkload::submit(synergy::Queue& queue) const {
  ligen::submit_screening_kernels(queue,
                                  static_cast<std::size_t>(ligands_), atoms_,
                                  fragments_, params_, batch_size_);
}

sim::KernelProfile LigenWorkload::aggregate_profile() const {
  sim::KernelProfile agg;
  agg.name = "ligen::aggregate";
  // Dock and score kernels both run once per ligand.
  agg.accumulate(ligen::dock_profile(atoms_, fragments_, params_));
  agg.accumulate(ligen::score_profile(atoms_, params_));
  return agg.scaled(0.5);
}

std::vector<KernelLaunch> LigenWorkload::kernel_launches() const {
  // Screening batches ligands (ligen::submit_screening_kernels): full
  // batches form one launch class per kernel, the remainder another.
  const auto ligands = static_cast<std::size_t>(ligands_);
  const std::size_t full = ligands / batch_size_;
  const std::size_t rem = ligands % batch_size_;
  const sim::KernelProfile dock =
      ligen::dock_profile(atoms_, fragments_, params_);
  const sim::KernelProfile score = ligen::score_profile(atoms_, params_);
  std::vector<KernelLaunch> out;
  if (full > 0) {
    out.push_back({dock, batch_size_, static_cast<double>(full)});
    out.push_back({score, batch_size_, static_cast<double>(full)});
  }
  if (rem > 0) {
    out.push_back({dock, rem, 1.0});
    out.push_back({score, rem, 1.0});
  }
  return out;
}

std::unique_ptr<Workload>
workload_from_features(const std::string& application,
                       std::span<const double> features) {
  const auto as_int = [&](std::size_t i) {
    DSEM_ENSURE(i < features.size() && std::isfinite(features[i]),
                "workload_from_features: bad feature vector for " +
                    application);
    return static_cast<int>(std::llround(features[i]));
  };
  if (application == "cronos") {
    DSEM_ENSURE(features.size() == 3,
                "workload_from_features: cronos expects {nx, ny, nz}");
    return std::make_unique<CronosWorkload>(
        cronos::GridDims{as_int(0), as_int(1), as_int(2)});
  }
  DSEM_ENSURE(application == "ligen",
              "workload_from_features: unknown application \"" + application +
                  "\"");
  DSEM_ENSURE(features.size() == 3,
              "workload_from_features: ligen expects {ligands, fragments, "
              "atoms}");
  return std::make_unique<LigenWorkload>(as_int(0), as_int(2), as_int(1));
}

} // namespace dsem::core
