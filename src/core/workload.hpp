// Application workloads as the energy-modeling layer sees them.
//
// A workload is "one application run with one concrete input": it knows
// its domain-specific feature vector (Table 2), can submit its kernel
// sequence to a queue (SimOnly fast path), and exposes the aggregate
// static profile the general-purpose model consumes (Table 1 features).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cronos/grid.hpp"
#include "ligen/dock.hpp"
#include "sim/kernel_profile.hpp"
#include "synergy/queue.hpp"

namespace dsem::core {

/// One launch class of a workload's run: a kernel's per-item profile, its
/// launch geometry, and how often the run launches it. The list of these
/// is the per-kernel view the hybrid feature extractor consumes
/// (core/kernel_features.hpp); `launches * work_items` summed over the
/// list is the run's total work.
struct KernelLaunch {
  sim::KernelProfile profile;
  std::size_t work_items = 0;
  double launches = 1.0;
};

class Workload {
public:
  virtual ~Workload() = default;

  /// Short identifier, e.g. "160x64x64" or "89x20x10000".
  virtual std::string name() const = 0;

  /// Application this workload belongs to ("cronos" / "ligen").
  virtual std::string application() const = 0;

  /// Domain-specific features (Table 2), in the documented order.
  virtual std::vector<double> domain_features() const = 0;

  /// Names matching domain_features(), for table output.
  virtual std::vector<std::string> feature_names() const = 0;

  /// Submit the full kernel sequence of one run (no host numerics).
  virtual void submit(synergy::Queue& queue) const = 0;

  /// Work-weighted aggregate of the run's kernel profiles (per work-item),
  /// i.e. the static code features available without executing.
  virtual sim::KernelProfile aggregate_profile() const = 0;

  /// The distinct kernel launch classes of one run, with launch counts and
  /// geometry. Submitting the workload issues exactly these launches (in
  /// some order); consumers must not depend on the list's order — the
  /// hybrid feature extractor canonicalizes it.
  virtual std::vector<KernelLaunch> kernel_launches() const = 0;
};

/// Cronos run: `steps` timesteps of the MHD solver on a given grid.
class CronosWorkload final : public Workload {
public:
  explicit CronosWorkload(cronos::GridDims dims, int steps = 10,
                          int num_vars = 8);

  std::string name() const override { return dims_.to_string(); }
  std::string application() const override { return "cronos"; }
  std::vector<double> domain_features() const override;
  std::vector<std::string> feature_names() const override;
  void submit(synergy::Queue& queue) const override;
  sim::KernelProfile aggregate_profile() const override;
  std::vector<KernelLaunch> kernel_launches() const override;

  const cronos::GridDims& dims() const noexcept { return dims_; }
  int steps() const noexcept { return steps_; }

private:
  cronos::GridDims dims_;
  int steps_;
  int num_vars_;
};

/// LiGen run: screening of `ligands` ligands of a given structure.
class LigenWorkload final : public Workload {
public:
  LigenWorkload(int ligands, int atoms, int fragments,
                ligen::DockingParams params = {},
                std::size_t batch_size = 4096);

  std::string name() const override;
  std::string application() const override { return "ligen"; }
  std::vector<double> domain_features() const override;
  std::vector<std::string> feature_names() const override;
  void submit(synergy::Queue& queue) const override;
  sim::KernelProfile aggregate_profile() const override;
  std::vector<KernelLaunch> kernel_launches() const override;

  int ligands() const noexcept { return ligands_; }
  int atoms() const noexcept { return atoms_; }
  int fragments() const noexcept { return fragments_; }

private:
  int ligands_;
  int atoms_;
  int fragments_;
  ligen::DockingParams params_;
  std::size_t batch_size_;
};

/// Rebuilds a workload from its application name and Table-2 feature
/// vector, using the canonical run shapes of the serving training sets
/// (cronos: 10 solver steps; ligen: default docking parameters and batch
/// size). This is how the serving layer recovers per-kernel features for
/// hybrid-model queries that carry only domain features. Features are
/// rounded to the nearest integer; throws for unknown applications or
/// out-of-range values.
std::unique_ptr<Workload>
workload_from_features(const std::string& application,
                       std::span<const double> features);

} // namespace dsem::core
