// Deterministic parallel sweep engine.
//
// Every experiment in the paper walks the same grid: (workload/run) x
// (default clock + each frequency) x repetitions. This engine runs that
// grid on a ThreadPool with results that are bit-identical for ANY pool
// size, including 1:
//
//  - Each grid point runs on its own replica of the simulated device,
//    seeded as derive_seed(base_seed, flat_index). The noise stream a
//    point observes therefore depends only on its grid coordinates, never
//    on scheduling order or thread count.
//  - Results are written into pre-sized disjoint slots, so the output
//    layout is fixed before any task runs.
//  - The shared base device is never touched: its RNG does not advance,
//    and concurrent points cannot race on it.
//
// Thread count comes from SweepOptions::pool (nullptr = ThreadPool::
// global(), sized by the DSEM_THREADS environment variable; DSEM_THREADS=1
// reproduces serial execution exactly).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/measurement.hpp"

namespace dsem::core {

struct SweepReport;

struct SweepOptions {
  int repetitions = kDefaultRepetitions;
  /// Pool to run grid points on; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Shared memoization of noise-free launch costs (nullptr disables).
  /// Purely an arithmetic cache: results are bit-identical either way.
  sim::ProfileCache* cache = nullptr;
  /// Bounded-retry recovery for transient device faults. A grid point
  /// that exhausts its attempts is recorded as failed (SweepPoint::ok ==
  /// false), never aborts the sweep.
  RetryPolicy retry;
  /// Recovery accounting sink, accumulated across sweeps (nullptr
  /// disables). See core/sweep_report.hpp for which fields are
  /// deterministic.
  SweepReport* report = nullptr;
};

/// One cell of the task axis: a callable that submits one full
/// application run into the queue it is given.
struct SweepTask {
  RunFn run;
};

/// Result for one task: its default-clock baseline plus one point per
/// swept frequency (same order as the `freqs` argument). Points that
/// exhausted their retries carry ok == false with zeroed measurements;
/// a failed baseline poisons the task's normalizations but leaves the
/// swept points usable.
struct FrequencySweep {
  Measurement baseline;
  double default_freq_mhz = 0.0;
  bool baseline_ok = true;
  std::uint64_t baseline_attempts = 0;
  std::string baseline_error;
  std::vector<SweepPoint> points;
};

/// Measures every task at the default clock and at every frequency in
/// `freqs` (all supported frequencies when empty). The (task x frequency)
/// grid is flattened and executed in parallel; see the file comment for
/// the determinism contract.
std::vector<FrequencySweep> sweep_grid(synergy::Device& device,
                                       std::span<const SweepTask> tasks,
                                       std::span<const double> freqs,
                                       const SweepOptions& options = {});

/// sweep_grid for a single workload.
FrequencySweep sweep_workload(synergy::Device& device,
                              const Workload& workload,
                              std::span<const double> freqs = {},
                              const SweepOptions& options = {});

/// sweep_grid over a workload list (one FrequencySweep per workload, in
/// input order).
std::vector<FrequencySweep> sweep_workloads(
    synergy::Device& device,
    std::span<const std::unique_ptr<Workload>> workloads,
    std::span<const double> freqs = {}, const SweepOptions& options = {});

} // namespace dsem::core
