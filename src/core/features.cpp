#include "core/features.hpp"

#include "common/error.hpp"

namespace dsem::core {

std::vector<double> static_feature_vector(const sim::KernelProfile& profile) {
  const auto raw = profile.static_features();
  double total = 0.0;
  for (double v : raw) {
    total += v;
  }
  DSEM_ENSURE(total > 0.0, "static features of a zero-work profile");
  std::vector<double> out(raw.begin(), raw.end());
  for (double& v : out) {
    v /= total;
  }
  return out;
}

std::vector<std::string> static_feature_names() {
  std::vector<std::string> names;
  names.reserve(sim::kNumStaticFeatures);
  for (const char* n : sim::kStaticFeatureNames) {
    names.emplace_back(n);
  }
  return names;
}

std::vector<double> with_frequency(std::vector<double> features,
                                   double freq_mhz) {
  features.push_back(freq_mhz);
  return features;
}

} // namespace dsem::core
