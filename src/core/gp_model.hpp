// General-purpose energy model — the state-of-the-art baseline (§4.1,
// Fan et al. ICPP'19).
//
// Trained once per device on the 106-kernel micro-benchmark suite: each
// kernel is executed at every (strided) frequency, its speedup and
// normalized energy relative to the default clock are recorded, and two
// regressors learn [normalized static features..., frequency] -> ratio.
// Prediction for an application uses only its aggregate static code
// features: the model is input-size-blind by construction.
#pragma once

#include <memory>

#include "common/json.hpp"
#include "core/ds_model.hpp" // for Prediction
#include "core/sweep.hpp"
#include "microbench/suite.hpp"
#include "ml/forest.hpp"
#include "synergy/device.hpp"

namespace dsem::core {

class GeneralPurposeModel {
public:
  /// Uses clones of `prototype` for the speedup and energy regressors.
  explicit GeneralPurposeModel(const ml::Regressor& prototype);

  /// Random Forest with library defaults.
  GeneralPurposeModel();

  /// Trains on the micro-benchmark corpus measured on `device`. Every
  /// `freq_stride`-th supported frequency is sampled (1 = all 196).
  void train(synergy::Device& device,
             std::span<const microbench::MicroBenchmark> suite,
             int repetitions = 3, std::size_t freq_stride = 4);

  /// Same, with full sweep-engine control (retry policy, report sink,
  /// shared cache/pool). Grid points that exhaust their retries are
  /// dropped from the training set; a kernel whose baseline fails drops
  /// entirely. Throws only if nothing survives.
  void train(synergy::Device& device,
             std::span<const microbench::MicroBenchmark> suite,
             const SweepOptions& options, std::size_t freq_stride = 4);

  bool trained() const noexcept { return trained_; }
  std::size_t training_rows() const noexcept { return training_rows_; }

  /// Predicted speedup / normalized-energy curve for an application whose
  /// aggregate kernel profile is `profile`. time_s/energy_j stay empty —
  /// this model family predicts ratios, not absolute values.
  Prediction predict(const sim::KernelProfile& profile,
                     std::span<const double> freqs_mhz,
                     double default_freq_mhz) const;

  /// Serializes the trained model (both regressors, via ml/serialize) so
  /// it can be stored in a "dsem-model-v1" artifact (serve/artifact.hpp).
  /// Round-trips bit-identically. Throws for untrained models.
  json::Value to_json() const;
  static GeneralPurposeModel from_json(const json::Value& value);

private:
  std::unique_ptr<ml::Regressor> speedup_model_;
  std::unique_ptr<ml::Regressor> energy_model_;
  bool trained_ = false;
  std::size_t training_rows_ = 0;
};

} // namespace dsem::core
