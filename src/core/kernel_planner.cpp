#include "core/kernel_planner.hpp"

#include <limits>

#include "common/error.hpp"

namespace dsem::core {

KernelPlan plan_kernel_frequencies(synergy::Device& device,
                                   const Workload& workload,
                                   double max_slowdown, int repetitions,
                                   std::size_t freq_stride) {
  DSEM_ENSURE(max_slowdown >= 0.0, "max_slowdown must be non-negative");
  DSEM_ENSURE(freq_stride >= 1, "freq_stride must be >= 1");

  // Kernel-resolved measurement of one full run at a pinned frequency:
  // returns time/energy per kernel name.
  const auto run_at = [&](double freq_mhz) {
    std::map<std::string, Measurement> per_kernel;
    for (int r = 0; r < repetitions; ++r) {
      if (freq_mhz > 0.0) {
        device.set_frequency(freq_mhz);
      } else {
        device.reset_frequency();
      }
      synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
      workload.submit(queue);
      for (const auto& record : queue.records()) {
        auto& m = per_kernel[record.kernel_name];
        m.time_s += record.time_s;
        m.energy_j += record.energy_j;
      }
    }
    device.reset_frequency();
    for (auto& [_, m] : per_kernel) {
      m.time_s /= repetitions;
      m.energy_j /= repetitions;
    }
    return per_kernel;
  };

  const auto baseline = run_at(0.0);
  DSEM_ENSURE(!baseline.empty(), "workload submitted no kernels");

  const auto all = device.supported_frequencies();
  struct Best {
    double freq = 0.0;
    double energy = std::numeric_limits<double>::infinity();
    double saving = 0.0;
  };
  std::map<std::string, Best> best;
  for (const auto& [name, base] : baseline) {
    best[name] =
        Best{device.default_frequency(), base.energy_j, 0.0};
  }

  for (std::size_t i = 0; i < all.size(); i += freq_stride) {
    const auto at = run_at(all[i]);
    for (const auto& [name, m] : at) {
      const Measurement& base = baseline.at(name);
      const double slowdown = 1.0 - base.time_s / m.time_s;
      if (slowdown <= max_slowdown && m.energy_j < best[name].energy) {
        best[name] = Best{all[i], m.energy_j,
                          1.0 - m.energy_j / base.energy_j};
      }
    }
  }

  KernelPlan plan;
  for (const auto& [name, b] : best) {
    plan.freq_by_kernel[name] = b.freq;
    plan.predicted_saving[name] = b.saving;
  }
  return plan;
}

Measurement measure_with_plan(synergy::Device& device,
                              const Workload& workload,
                              const KernelPlan& plan, int repetitions) {
  DSEM_ENSURE(!plan.freq_by_kernel.empty(), "empty kernel plan");
  DSEM_ENSURE(repetitions >= 1, "repetitions must be >= 1");
  Measurement acc;
  for (int r = 0; r < repetitions; ++r) {
    device.reset_frequency();
    synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
    queue.set_kernel_frequency_plan(plan.freq_by_kernel);
    workload.submit(queue);
    acc.time_s += queue.total_time_s();
    acc.energy_j += queue.total_energy_j();
  }
  device.reset_frequency();
  acc.time_s /= repetitions;
  acc.energy_j /= repetitions;
  return acc;
}

} // namespace dsem::core
