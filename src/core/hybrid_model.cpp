#include "core/hybrid_model.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "ml/serialize.hpp"

namespace dsem::core {

namespace {

ml::ForestParams default_forest_params() {
  ml::ForestParams params;
  params.n_estimators = 100; // same paper-default forest as the DS family,
  params.max_depth = 0;      // distinct seed so the families never share
  params.seed = 0x4b1d;      // bootstrap streams
  return params;
}

} // namespace

HybridModel::HybridModel(const ml::Regressor& prototype, bool log_targets)
    : time_model_(prototype.clone()), energy_model_(prototype.clone()),
      log_targets_(log_targets) {}

HybridModel::HybridModel()
    : HybridModel(ml::RandomForestRegressor(default_forest_params())) {}

void HybridModel::train(const Dataset& dataset,
                        std::span<const std::unique_ptr<Workload>> workloads,
                        const sim::DeviceSpec& spec,
                        std::span<const std::size_t> rows) {
  DSEM_ENSURE(dataset.rows() > 0, "training on an empty dataset");
  DSEM_ENSURE(workloads.size() == dataset.num_groups(),
              "hybrid train: workload list does not match dataset groups");
  trace::Span span("train.hybrid", trace::cat::kTrain);
  span.value(static_cast<double>(rows.empty() ? dataset.rows() : rows.size()));
  metrics::ScopedTimer timer("train.hybrid_s");
  std::vector<std::size_t> all;
  if (rows.empty()) {
    all.resize(dataset.rows());
    std::iota(all.begin(), all.end(), 0);
    rows = all;
  }

  // One fused prefix per group (input), computed only for groups that
  // contribute training rows: domain features plus the default-clock
  // static+dynamic block of that group's workload.
  std::vector<std::vector<double>> fused(dataset.num_groups());
  std::size_t width = 0;
  for (const std::size_t r : rows) {
    const auto g = static_cast<std::size_t>(dataset.groups[r]);
    if (fused[g].empty()) {
      fused[g] = fused_feature_vector(*workloads[g], spec,
                                      dataset.default_freq_mhz[g]);
      DSEM_ENSURE(width == 0 || fused[g].size() == width,
                  "hybrid train: inconsistent fused feature widths");
      width = fused[g].size();
    }
  }

  const std::size_t freq_col = dataset.x.cols() - 1;
  ml::Matrix x(rows.size(), width + 1);
  std::vector<double> t(rows.size());
  std::vector<double> e(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    const std::vector<double>& prefix =
        fused[static_cast<std::size_t>(dataset.groups[r])];
    auto row = x.row(i);
    std::copy(prefix.begin(), prefix.end(), row.begin());
    row.back() = dataset.x.row(r)[freq_col];
    t[i] = dataset.time_s[r];
    e[i] = dataset.energy_j[r];
    DSEM_ENSURE(t[i] > 0.0 && e[i] > 0.0,
                "non-positive measurement in training data");
    if (log_targets_) {
      t[i] = std::log(t[i]);
      e[i] = std::log(e[i]);
    }
  }
  time_model_->fit(x, t);
  energy_model_->fit(x, e);
  input_width_ = width + 1;
  trained_ = true;
}

Prediction HybridModel::predict(const Workload& workload,
                                const sim::DeviceSpec& spec,
                                std::span<const double> freqs_mhz,
                                double default_freq_mhz) const {
  const std::vector<double> fused =
      fused_feature_vector(workload, spec, default_freq_mhz);
  return predict_fused(fused, freqs_mhz, default_freq_mhz);
}

Prediction HybridModel::predict_fused(std::span<const double> fused,
                                      std::span<const double> freqs_mhz,
                                      double default_freq_mhz) const {
  DSEM_ENSURE(trained_, "predict on an untrained HybridModel");
  DSEM_ENSURE(!freqs_mhz.empty(), "predict over an empty frequency list");
  DSEM_ENSURE(fused.size() + 1 == input_width_,
              "hybrid predict: fused feature width mismatch");

  Prediction out;
  out.freqs_mhz.assign(freqs_mhz.begin(), freqs_mhz.end());
  out.time_s.reserve(freqs_mhz.size());
  out.energy_j.reserve(freqs_mhz.size());

  // One batch for the whole frequency grid (baseline row last), exactly
  // like the domain-specific family: rows are independent predict_ones.
  ml::Matrix queries(freqs_mhz.size() + 1, fused.size() + 1);
  for (std::size_t i = 0; i <= freqs_mhz.size(); ++i) {
    auto row = queries.row(i);
    std::copy(fused.begin(), fused.end(), row.begin());
    row.back() = i < freqs_mhz.size() ? freqs_mhz[i] : default_freq_mhz;
  }
  std::vector<double> t_pred = time_model_->predict_many(queries);
  std::vector<double> e_pred = energy_model_->predict_many(queries);
  if (log_targets_) {
    for (double& t : t_pred) {
      t = std::exp(t);
    }
    for (double& e : e_pred) {
      e = std::exp(e);
    }
  }
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    out.time_s.push_back(t_pred[i]);
    out.energy_j.push_back(e_pred[i]);
  }

  const double t_base = t_pred.back();
  const double e_base = e_pred.back();
  DSEM_ENSURE(t_base > 0.0 && e_base > 0.0, "non-positive predicted baseline");

  out.speedup.reserve(freqs_mhz.size());
  out.norm_energy.reserve(freqs_mhz.size());
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    out.speedup.push_back(t_base / out.time_s[i]);
    out.norm_energy.push_back(out.energy_j[i] / e_base);
  }
  return out;
}

json::Value HybridModel::to_json() const {
  DSEM_ENSURE(trained_, "serialize of an untrained HybridModel");
  auto out = json::Value::object();
  out.set("log_targets", log_targets_);
  out.set("input_width", static_cast<double>(input_width_));
  out.set("time", ml::regressor_to_json(*time_model_));
  out.set("energy", ml::regressor_to_json(*energy_model_));
  return out;
}

HybridModel HybridModel::from_json(const json::Value& value) {
  HybridModel model;
  model.time_model_ = ml::regressor_from_json(value.at("time"));
  model.energy_model_ = ml::regressor_from_json(value.at("energy"));
  model.log_targets_ = value.at("log_targets").as_bool();
  const double width = value.at("input_width").as_number();
  DSEM_ENSURE(width >= 2.0 && width == std::floor(width),
              "hybrid payload: bad input_width");
  model.input_width_ = static_cast<std::size_t>(width);
  model.trained_ = true;
  return model;
}

} // namespace dsem::core
