// Hybrid static+dynamic energy/time model — the third model family
// (DSO-style; DESIGN.md §7.13).
//
// Where the domain-specific model maps [Table-2 features..., frequency] to
// time/energy and the general-purpose baseline maps static code features
// to ratios, the hybrid family fuses both sides: its regressors consume
// [domain features..., hybrid block..., frequency], with the hybrid block
// (core/kernel_features.hpp) carrying per-kernel static mix, launch
// geometry, and the dynamic profile of one noise-free default-clock run.
// The dynamic half gives it what pure input-feature models lack off the
// training grid: the execution model's own scale estimate, so
// extrapolation to unseen input sizes anchors on physics instead of tree
// boundaries (Afzal et al., arXiv 2607.00819).
//
// Training and prediction are bit-identical for any thread-pool size: the
// fused features are pure arithmetic and the regressors inherit the ml::
// determinism contract.
#pragma once

#include <memory>

#include "common/json.hpp"
#include "core/dataset.hpp"
#include "core/ds_model.hpp" // for Prediction
#include "core/kernel_features.hpp"
#include "ml/forest.hpp"

namespace dsem::core {

class HybridModel {
public:
  /// Uses clones of `prototype` for the time and energy regressors; with
  /// `log_targets` (default) they fit log(time)/log(energy) — the same
  /// geometric shape-blending rationale as the domain-specific family.
  explicit HybridModel(const ml::Regressor& prototype, bool log_targets = true);

  /// Random Forest with the paper-default hyperparameters.
  HybridModel();

  /// Trains on dataset rows selected by `rows` (all rows when empty).
  /// `workloads` must be the list (same order) build_dataset consumed —
  /// each group's fused features are recomputed from its workload on
  /// `spec` at the group's default clock.
  void train(const Dataset& dataset,
             std::span<const std::unique_ptr<Workload>> workloads,
             const sim::DeviceSpec& spec,
             std::span<const std::size_t> rows = {});

  bool trained() const noexcept { return trained_; }

  /// Predicts the full curve for one workload across `freqs_mhz`, with
  /// speedup / normalized energy baselined on the prediction at
  /// `default_freq_mhz` (§4.2.3).
  Prediction predict(const Workload& workload, const sim::DeviceSpec& spec,
                     std::span<const double> freqs_mhz,
                     double default_freq_mhz) const;

  /// Low-level variant for callers that already hold the fused vector
  /// (fused_feature_vector); `fused` must have input_width() - 1 entries.
  Prediction predict_fused(std::span<const double> fused,
                           std::span<const double> freqs_mhz,
                           double default_freq_mhz) const;

  const ml::Regressor& time_model() const { return *time_model_; }
  const ml::Regressor& energy_model() const { return *energy_model_; }
  bool log_targets() const noexcept { return log_targets_; }
  /// Regressor input width: fused features + 1 (frequency column).
  std::size_t input_width() const noexcept { return input_width_; }

  /// Serializes the trained model (ml/serialize) for the "dsem-model-v1"
  /// hybrid payload. Round-trips byte-stably and predicts bit-identically
  /// after from_json(to_json()). Throws for untrained models.
  json::Value to_json() const;
  static HybridModel from_json(const json::Value& value);

private:
  std::unique_ptr<ml::Regressor> time_model_;
  std::unique_ptr<ml::Regressor> energy_model_;
  bool log_targets_ = true;
  bool trained_ = false;
  std::size_t input_width_ = 0;
};

} // namespace dsem::core
