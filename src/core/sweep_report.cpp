#include "core/sweep_report.hpp"

#include <ostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"

namespace dsem::core {

double SweepReport::cache_hit_rate() const noexcept {
  const std::uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

void SweepReport::add_phase(std::string name, double seconds) {
  // Phase wall-times feed the trace as gauges so the report and the trace
  // share one metrics source; wall-clock durations are timing-dependent by
  // nature and stay out of the golden logical view.
  trace::gauge("sweep.phase_s", seconds, trace::Reliability::kTimingDependent,
               name);
  phases.push_back({std::move(name), seconds});
}

void print_sweep_report(std::ostream& os, const SweepReport& report) {
  os << "sweep report\n"
     << "  grid points:       " << report.grid_points << " ("
     << report.failed_points << " failed)\n"
     << "  attempts:          " << report.retry.attempts << " ("
     << report.retry.retries << " retries, " << report.retry.faults
     << " faults)\n"
     << "  simulated backoff: " << report.retry.simulated_backoff_s << " s\n"
     << "  cache hit rate:    " << 100.0 * report.cache_hit_rate() << "% ("
     << report.cache_hits << " hits / " << report.cache_misses
     << " misses)\n";
  for (const FailedPoint& f : report.failures) {
    os << "  failed: task " << f.task << " @ "
       << (f.baseline ? "default clock" : std::to_string(f.freq_mhz) + " MHz")
       << " after " << f.attempts << " attempts: " << f.error << "\n";
  }
  for (const SweepReport::Phase& phase : report.phases) {
    os << "  phase " << phase.name << ": " << phase.seconds << " s\n";
  }
}

void add_fault_cli_options(CliParser& cli) {
  cli.add_option("fault-rate", "uniform transient-fault rate (0 disables)",
                 "0");
  cli.add_option("fault-set-freq-rate",
                 "set_frequency rejection rate (-1 = from --fault-rate)",
                 "-1");
  cli.add_option("fault-energy-drop-rate",
                 "dropped energy-read rate (-1 = from --fault-rate)", "-1");
  cli.add_option("fault-energy-garbage-rate",
                 "garbage energy-read rate (-1 = from --fault-rate)", "-1");
  cli.add_option("fault-launch-rate",
                 "kernel-launch abort rate (-1 = from --fault-rate)", "-1");
  cli.add_option("retry-attempts", "max attempts per faulting operation",
                 "3");
  cli.add_option("retry-backoff-s", "simulated backoff before first retry",
                 "0.01");
}

sim::FaultConfig fault_config_from_cli(const CliParser& cli) {
  const double master = cli.option_double("fault-rate");
  DSEM_ENSURE(master >= 0.0 && master <= 1.0,
              "--fault-rate must be a probability in [0, 1]");
  sim::FaultConfig config = sim::FaultConfig::uniform(master);
  const auto override_rate = [&](const char* name, double& rate) {
    const double value = cli.option_double(name);
    if (value >= 0.0) {
      DSEM_ENSURE(value <= 1.0, std::string("--") + name +
                                    " must be a probability in [0, 1]");
      rate = value;
    }
  };
  override_rate("fault-set-freq-rate", config.set_frequency_rate);
  override_rate("fault-energy-drop-rate", config.energy_read_drop_rate);
  override_rate("fault-energy-garbage-rate", config.energy_read_garbage_rate);
  override_rate("fault-launch-rate", config.launch_rate);
  return config;
}

RetryPolicy retry_policy_from_cli(const CliParser& cli) {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(cli.option_int("retry-attempts"));
  policy.backoff_base_s = cli.option_double("retry-backoff-s");
  DSEM_ENSURE(policy.max_attempts >= 1, "--retry-attempts must be >= 1");
  DSEM_ENSURE(policy.backoff_base_s >= 0.0,
              "--retry-backoff-s must be >= 0");
  return policy;
}

} // namespace dsem::core
