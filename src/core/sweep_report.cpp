#include "core/sweep_report.hpp"

#include <ostream>

#include "common/bench_report.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "obs/ledger.hpp"

namespace dsem::core {

double SweepReport::cache_hit_rate() const noexcept {
  const std::uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

void SweepReport::add_phase(std::string name, double seconds) {
  // Phase wall-times feed the trace as gauges so the report and the trace
  // share one metrics source; wall-clock durations are timing-dependent by
  // nature and stay out of the golden logical view.
  trace::gauge("sweep.phase_s", seconds, trace::Reliability::kTimingDependent,
               name);
  if (metrics::enabled()) {
    metrics::gauge("phase." + name + "_s", seconds,
                   metrics::Reliability::kWallClock);
  }
  phases.push_back({std::move(name), seconds});
}

void print_sweep_report(std::ostream& os, const SweepReport& report) {
  os << "sweep report\n"
     << "  grid points:       " << report.grid_points << " ("
     << report.failed_points << " failed)\n"
     << "  attempts:          " << report.retry.attempts << " ("
     << report.retry.retries << " retries, " << report.retry.faults
     << " faults)\n"
     << "  simulated backoff: " << report.retry.simulated_backoff_s << " s\n"
     << "  cache hit rate:    " << 100.0 * report.cache_hit_rate() << "% ("
     << report.cache_hits << " hits / " << report.cache_misses
     << " misses)\n";
  for (const FailedPoint& f : report.failures) {
    os << "  failed: task " << f.task << " @ "
       << (f.baseline ? "default clock" : std::to_string(f.freq_mhz) + " MHz")
       << " after " << f.attempts << " attempts: " << f.error << "\n";
  }
  for (const SweepReport::Phase& phase : report.phases) {
    os << "  phase " << phase.name << ": " << phase.seconds << " s\n";
  }
}

json::Value sweep_report_to_json(const SweepReport& report) {
  auto root = json::Value::object();
  root.set("grid_points", report.grid_points);
  root.set("failed_points", report.failed_points);

  auto retry = json::Value::object();
  retry.set("attempts", report.retry.attempts);
  retry.set("retries", report.retry.retries);
  retry.set("faults", report.retry.faults);
  retry.set("simulated_backoff_s", report.retry.simulated_backoff_s);
  root.set("retry", std::move(retry));

  auto cache = json::Value::object();
  cache.set("hits", report.cache_hits);
  cache.set("misses", report.cache_misses);
  cache.set("hit_rate", report.cache_hit_rate());
  root.set("cache", std::move(cache));

  auto failures = json::Value::array();
  for (const FailedPoint& f : report.failures) {
    auto failure = json::Value::object();
    failure.set("task", f.task);
    failure.set("freq_mhz", f.freq_mhz);
    failure.set("baseline", f.baseline);
    failure.set("attempts", f.attempts);
    failure.set("error", f.error);
    failures.push_back(std::move(failure));
  }
  root.set("failures", std::move(failures));

  auto phases = json::Value::array();
  for (const SweepReport::Phase& phase : report.phases) {
    auto p = json::Value::object();
    p.set("name", phase.name);
    p.set("seconds", phase.seconds);
    phases.push_back(std::move(p));
  }
  root.set("phases", std::move(phases));
  return root;
}

json::Value run_manifest(const std::string& program,
                         const SweepReport* report) {
  auto manifest = json::Value::object();
  manifest.set("schema", kRunSchema);
  manifest.set("program", program);
  manifest.set("sweep_report",
               report == nullptr ? json::Value()
                                 : sweep_report_to_json(*report));
  manifest.set("metrics", metrics::Registry::global().snapshot().to_json());
  return manifest;
}

void add_observability_cli_options(CliParser& cli) {
  cli.add_option("trace-out",
                 "write a Chrome trace-event JSON of the run to this path",
                 "");
  cli.add_option(
      "metrics-out",
      "write a dsem-run-v1 JSON manifest (sweep report + metrics) here", "");
  cli.add_option(
      "ledger-out",
      "write a dsem-ledger-v1 attribution ledger (per-request / per-job "
      "records) here",
      "");
}

bool enable_observability_from_cli(const CliParser& cli) {
  bool active = false;
  if (!cli.option("trace-out").empty()) {
    trace::set_enabled(true);
    active = true;
  }
  if (!cli.option("metrics-out").empty()) {
    metrics::set_enabled(true);
    active = true;
  }
  if (!cli.option("ledger-out").empty()) {
    obs::set_enabled(true);
    active = true;
  }
  return active;
}

void write_observability_outputs(std::ostream& os, const CliParser& cli,
                                 const std::string& program,
                                 const SweepReport* report) {
  const std::string trace_out = cli.option("trace-out");
  if (!trace_out.empty()) {
    trace::write_chrome_file(trace_out);
    os << "\ntrace written to " << trace_out << "\n";
    trace::Tracer::global().write_summary(os);
  }
  const std::string metrics_out = cli.option("metrics-out");
  if (!metrics_out.empty()) {
    benchreport::write_file(metrics_out, run_manifest(program, report));
    os << "\nrun manifest written to " << metrics_out << "\n";
    metrics::Registry::global().snapshot().write_table(os);
  }
  const std::string ledger_out = cli.option("ledger-out");
  if (!ledger_out.empty()) {
    obs::Ledger::global().config().program = program;
    obs::Ledger::global().write_file(ledger_out);
    const auto& ledger = obs::Ledger::global();
    os << "\nledger written to " << ledger_out << " ("
       << ledger.requests().size() << " requests, " << ledger.jobs().size()
       << " jobs)\n";
  }
}

void add_fault_cli_options(CliParser& cli) {
  cli.add_option("fault-rate", "uniform transient-fault rate (0 disables)",
                 "0");
  cli.add_option("fault-set-freq-rate",
                 "set_frequency rejection rate (-1 = from --fault-rate)",
                 "-1");
  cli.add_option("fault-energy-drop-rate",
                 "dropped energy-read rate (-1 = from --fault-rate)", "-1");
  cli.add_option("fault-energy-garbage-rate",
                 "garbage energy-read rate (-1 = from --fault-rate)", "-1");
  cli.add_option("fault-launch-rate",
                 "kernel-launch abort rate (-1 = from --fault-rate)", "-1");
  cli.add_option("retry-attempts", "max attempts per faulting operation",
                 "3");
  cli.add_option("retry-backoff-s", "simulated backoff before first retry",
                 "0.01");
}

sim::FaultConfig fault_config_from_cli(const CliParser& cli) {
  const double master = cli.option_double("fault-rate");
  DSEM_ENSURE(master >= 0.0 && master <= 1.0,
              "--fault-rate must be a probability in [0, 1]");
  sim::FaultConfig config = sim::FaultConfig::uniform(master);
  const auto override_rate = [&](const char* name, double& rate) {
    const double value = cli.option_double(name);
    if (value >= 0.0) {
      DSEM_ENSURE(value <= 1.0, std::string("--") + name +
                                    " must be a probability in [0, 1]");
      rate = value;
    }
  };
  override_rate("fault-set-freq-rate", config.set_frequency_rate);
  override_rate("fault-energy-drop-rate", config.energy_read_drop_rate);
  override_rate("fault-energy-garbage-rate", config.energy_read_garbage_rate);
  override_rate("fault-launch-rate", config.launch_rate);
  return config;
}

RetryPolicy retry_policy_from_cli(const CliParser& cli) {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(cli.option_int("retry-attempts"));
  policy.backoff_base_s = cli.option_double("retry-backoff-s");
  DSEM_ENSURE(policy.max_attempts >= 1, "--retry-attempts must be >= 1");
  DSEM_ENSURE(policy.backoff_base_s >= 0.0,
              "--retry-backoff-s must be >= 0");
  return policy;
}

} // namespace dsem::core
