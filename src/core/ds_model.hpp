// Domain-specific energy/time model — the paper's contribution (§4.2).
//
// Two regressors (Random Forest by default, per the paper's model
// selection) map [domain features..., frequency] to raw execution time
// and energy. At prediction time the model is evaluated over all
// frequency configurations and the *predicted* value at the default
// frequency serves as the baseline for speedup and normalized energy
// (§4.2.3), from which the predicted Pareto-optimal frequency set follows.
#pragma once

#include <memory>

#include "common/json.hpp"
#include "core/dataset.hpp"
#include "ml/forest.hpp"

namespace dsem::core {

/// A model's view of one workload across the frequency schedule.
struct Prediction {
  std::vector<double> freqs_mhz;
  std::vector<double> time_s;      ///< empty for models predicting ratios only
  std::vector<double> energy_j;    ///< empty for models predicting ratios only
  std::vector<double> speedup;
  std::vector<double> norm_energy;

  /// Indices of the predicted Pareto-optimal frequency configurations.
  std::vector<std::size_t> pareto_indices() const;
};

class DomainSpecificModel {
public:
  /// Uses clones of `prototype` for the time and energy regressors.
  /// With `log_targets` (default), the regressors fit log(time)/log(energy):
  /// tree-ensemble blending then averages *shapes* geometrically, so input
  /// magnitude differences cancel exactly in the predicted speedup and
  /// normalized-energy ratios (see bench/ablation_log_targets).
  explicit DomainSpecificModel(const ml::Regressor& prototype,
                               bool log_targets = true);

  /// Paper default: Random Forest with library-default hyperparameters.
  DomainSpecificModel();

  /// Trains on dataset rows selected by `rows` (all rows when empty).
  void train(const Dataset& dataset, std::span<const std::size_t> rows = {});

  bool trained() const noexcept { return trained_; }

  /// Predicts the full curve for one input across `freqs`, with speedup /
  /// normalized energy baselined on the prediction at `default_freq_mhz`.
  Prediction predict(std::span<const double> domain_features,
                     std::span<const double> freqs_mhz,
                     double default_freq_mhz) const;

  const ml::Regressor& time_model() const { return *time_model_; }
  const ml::Regressor& energy_model() const { return *energy_model_; }
  bool log_targets() const noexcept { return log_targets_; }

  /// Serializes the trained model (both regressors, via ml/serialize) so
  /// it can be stored in a "dsem-model-v1" artifact (serve/artifact.hpp).
  /// Round-trips bit-identically: from_json(to_json()) predicts the same
  /// values bit for bit. Throws for untrained models.
  json::Value to_json() const;
  static DomainSpecificModel from_json(const json::Value& value);

private:
  std::unique_ptr<ml::Regressor> time_model_;
  std::unique_ptr<ml::Regressor> energy_model_;
  bool log_targets_ = true;
  bool trained_ = false;
};

} // namespace dsem::core
