#include "core/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace dsem::core {

std::vector<std::size_t> pareto_front(std::span<const double> speedup,
                                      std::span<const double> energy) {
  DSEM_ENSURE(speedup.size() == energy.size(), "objective size mismatch");
  DSEM_ENSURE(!speedup.empty(), "pareto_front of empty set");

  std::vector<std::size_t> order(speedup.size());
  std::iota(order.begin(), order.end(), 0);
  // Descending speedup; ties broken by ascending energy so the best of a
  // tie group is seen first.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (speedup[a] != speedup[b]) {
      return speedup[a] > speedup[b];
    }
    return energy[a] < energy[b];
  });

  // Scanning in descending speedup, a point is non-dominated iff its
  // energy is strictly below everything at least as fast seen so far.
  std::vector<std::size_t> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    if (energy[idx] < best_energy) {
      front.push_back(idx);
      best_energy = energy[idx];
    }
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return speedup[a] < speedup[b];
  });
  return front;
}

bool is_dominated(double s, double e, std::span<const double> front_speedup,
                  std::span<const double> front_energy) {
  DSEM_ENSURE(front_speedup.size() == front_energy.size(),
              "front size mismatch");
  for (std::size_t i = 0; i < front_speedup.size(); ++i) {
    const bool geq = front_speedup[i] >= s && front_energy[i] <= e;
    const bool strict = front_speedup[i] > s || front_energy[i] < e;
    if (geq && strict) {
      return true;
    }
  }
  return false;
}

ParetoComparison compare_pareto(std::span<const double> speedup,
                                std::span<const double> energy,
                                std::span<const std::size_t> true_front,
                                std::span<const std::size_t> predicted) {
  DSEM_ENSURE(speedup.size() == energy.size(), "objective size mismatch");
  ParetoComparison out;
  out.true_size = true_front.size();
  out.predicted_size = predicted.size();
  if (predicted.empty()) {
    return out;
  }

  double distance_acc = 0.0;
  for (std::size_t p : predicted) {
    DSEM_ENSURE(p < speedup.size(), "predicted index out of range");
    const bool match =
        std::find(true_front.begin(), true_front.end(), p) != true_front.end();
    if (match) {
      ++out.exact_matches;
    }
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t t : true_front) {
      const double ds = speedup[p] - speedup[t];
      const double de = energy[p] - energy[t];
      best = std::min(best, std::sqrt(ds * ds + de * de));
    }
    distance_acc += best;
  }
  out.generational_distance =
      distance_acc / static_cast<double>(predicted.size());
  return out;
}

} // namespace dsem::core
