#include "core/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace dsem::core {

std::vector<std::size_t> pareto_front(std::span<const double> speedup,
                                      std::span<const double> energy) {
  DSEM_ENSURE(speedup.size() == energy.size(), "objective size mismatch");
  DSEM_ENSURE(!speedup.empty(), "pareto_front of empty set");

  std::vector<std::size_t> order(speedup.size());
  std::iota(order.begin(), order.end(), 0);
  // Descending speedup; ties broken by ascending energy so the best of a
  // tie group is seen first.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (speedup[a] != speedup[b]) {
      return speedup[a] > speedup[b];
    }
    return energy[a] < energy[b];
  });

  // Scanning in descending speedup, a point is non-dominated iff its
  // energy is strictly below everything at least as fast seen so far.
  std::vector<std::size_t> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    if (energy[idx] < best_energy) {
      front.push_back(idx);
      best_energy = energy[idx];
    }
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return speedup[a] < speedup[b];
  });
  return front;
}

bool is_dominated(double s, double e, std::span<const double> front_speedup,
                  std::span<const double> front_energy) {
  DSEM_ENSURE(front_speedup.size() == front_energy.size(),
              "front size mismatch");
  for (std::size_t i = 0; i < front_speedup.size(); ++i) {
    const bool geq = front_speedup[i] >= s && front_energy[i] <= e;
    const bool strict = front_speedup[i] > s || front_energy[i] < e;
    if (geq && strict) {
      return true;
    }
  }
  return false;
}

ParetoComparison compare_pareto(std::span<const double> speedup,
                                std::span<const double> energy,
                                std::span<const std::size_t> true_front,
                                std::span<const std::size_t> predicted) {
  DSEM_ENSURE(speedup.size() == energy.size(), "objective size mismatch");
  ParetoComparison out;
  out.true_size = true_front.size();
  out.predicted_size = predicted.size();
  if (predicted.empty()) {
    return out;
  }
  DSEM_ENSURE(!true_front.empty(),
              "compare_pareto: empty true front with predicted points");

  // Speedup and normalized energy live on different scales (speedup spans
  // ~[0.3, 1.3] while normalized energy spans ~[0.5, 2+] on the paper's
  // devices), so a raw Euclidean distance is dominated by whichever
  // objective happens to have the wider unit. Normalize each objective by
  // its range over the TRUE front so both contribute comparably; a
  // degenerate (single-point or flat) range falls back to 1, i.e. raw
  // differences in that objective.
  double s_lo = std::numeric_limits<double>::infinity();
  double s_hi = -std::numeric_limits<double>::infinity();
  double e_lo = std::numeric_limits<double>::infinity();
  double e_hi = -std::numeric_limits<double>::infinity();
  for (std::size_t t : true_front) {
    DSEM_ENSURE(t < speedup.size(), "true-front index out of range");
    s_lo = std::min(s_lo, speedup[t]);
    s_hi = std::max(s_hi, speedup[t]);
    e_lo = std::min(e_lo, energy[t]);
    e_hi = std::max(e_hi, energy[t]);
  }
  const double s_range = s_hi - s_lo > 0.0 ? s_hi - s_lo : 1.0;
  const double e_range = e_hi - e_lo > 0.0 ? e_hi - e_lo : 1.0;

  double distance_acc = 0.0;
  for (std::size_t p : predicted) {
    DSEM_ENSURE(p < speedup.size(), "predicted index out of range");
    const bool match =
        std::find(true_front.begin(), true_front.end(), p) != true_front.end();
    if (match) {
      ++out.exact_matches;
    }
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t t : true_front) {
      const double ds = (speedup[p] - speedup[t]) / s_range;
      const double de = (energy[p] - energy[t]) / e_range;
      best = std::min(best, std::sqrt(ds * ds + de * de));
    }
    distance_acc += best;
  }
  out.generational_distance =
      distance_acc / static_cast<double>(predicted.size());
  return out;
}

} // namespace dsem::core
