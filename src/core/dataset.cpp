#include "core/dataset.hpp"

#include "common/error.hpp"

namespace dsem::core {

std::vector<std::size_t> Dataset::rows_of_group(int group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == group) {
      out.push_back(i);
    }
  }
  return out;
}

bool Dataset::group_ok(int group) const {
  DSEM_ENSURE(group >= 0 && static_cast<std::size_t>(group) < num_groups(),
              "group id out of range");
  const Measurement& base = group_default[static_cast<std::size_t>(group)];
  return base.time_s > 0.0 && base.energy_j > 0.0 &&
         !rows_of_group(group).empty();
}

int Dataset::group_of(const std::string& name) const {
  for (std::size_t g = 0; g < group_names.size(); ++g) {
    if (group_names[g] == name) {
      return static_cast<int>(g);
    }
  }
  DSEM_ENSURE(false, "no dataset group named " + name);
  return -1;
}

Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      const SweepOptions& options,
                      std::span<const double> freqs) {
  DSEM_ENSURE(!workloads.empty(), "build_dataset: no workloads");
  std::vector<double> all_freqs;
  if (freqs.empty()) {
    all_freqs = device.supported_frequencies();
    freqs = all_freqs;
  }

  const std::size_t feature_width = workloads.front()->domain_features().size();
  Dataset ds;

  const std::vector<FrequencySweep> sweeps =
      sweep_workloads(device, workloads, freqs, options);

  // Failed grid points contribute no rows; size the matrix to what
  // actually survived. A group whose baseline failed keeps its id slot
  // (ids always equal workload indices) but gets the {0, 0} placeholder
  // baseline and zero rows — see Dataset::group_ok.
  std::size_t usable_rows = 0;
  for (const FrequencySweep& sweep : sweeps) {
    if (!sweep.baseline_ok) {
      continue;
    }
    for (const SweepPoint& sp : sweep.points) {
      usable_rows += sp.ok ? 1 : 0;
    }
  }
  ds.x = ml::Matrix(usable_rows, feature_width + 1);

  std::size_t row = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = *workloads[w];
    const std::vector<double> features = workload.domain_features();
    DSEM_ENSURE(features.size() == feature_width,
                "workloads disagree on feature width");
    const FrequencySweep& sweep = sweeps[w];

    ds.group_names.push_back(workload.name());
    ds.default_freq_mhz.push_back(sweep.default_freq_mhz);
    ds.group_default.push_back(sweep.baseline_ok ? sweep.baseline
                                                 : Measurement{});
    if (!sweep.baseline_ok) {
      continue;
    }

    for (const SweepPoint& sp : sweep.points) {
      if (!sp.ok) {
        continue;
      }
      auto dst = ds.x.row(row);
      std::copy(features.begin(), features.end(), dst.begin());
      dst[feature_width] = sp.freq_mhz;
      ds.time_s.push_back(sp.m.time_s);
      ds.energy_j.push_back(sp.m.energy_j);
      ds.groups.push_back(static_cast<int>(w));
      ++row;
    }
  }
  DSEM_ENSURE(row == usable_rows, "dataset row accounting mismatch");
  return ds;
}

Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      int repetitions, std::span<const double> freqs) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  return build_dataset(device, workloads, options, freqs);
}

} // namespace dsem::core
