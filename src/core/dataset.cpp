#include "core/dataset.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dsem::core {

std::vector<std::size_t> Dataset::rows_of_group(int group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == group) {
      out.push_back(i);
    }
  }
  return out;
}

bool Dataset::group_ok(int group) const {
  DSEM_ENSURE(group >= 0 && static_cast<std::size_t>(group) < num_groups(),
              "group id out of range");
  const Measurement& base = group_default[static_cast<std::size_t>(group)];
  return base.time_s > 0.0 && base.energy_j > 0.0 &&
         !rows_of_group(group).empty();
}

int Dataset::group_of(const std::string& name) const {
  for (std::size_t g = 0; g < group_names.size(); ++g) {
    if (group_names[g] == name) {
      return static_cast<int>(g);
    }
  }
  DSEM_ENSURE(false, "no dataset group named " + name);
  return -1;
}

Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      const SweepOptions& options,
                      std::span<const double> freqs) {
  DSEM_ENSURE(!workloads.empty(), "build_dataset: no workloads");
  std::vector<double> all_freqs;
  if (freqs.empty()) {
    all_freqs = device.supported_frequencies();
    freqs = all_freqs;
  }

  const std::size_t feature_width = workloads.front()->domain_features().size();
  Dataset ds;

  const std::vector<FrequencySweep> sweeps =
      sweep_workloads(device, workloads, freqs, options);

  // Failed grid points contribute no rows; size the matrix to what
  // actually survived. A group whose baseline failed keeps its id slot
  // (ids always equal workload indices) but gets the {0, 0} placeholder
  // baseline and zero rows — see Dataset::group_ok.
  std::size_t usable_rows = 0;
  for (const FrequencySweep& sweep : sweeps) {
    if (!sweep.baseline_ok) {
      continue;
    }
    for (const SweepPoint& sp : sweep.points) {
      usable_rows += sp.ok ? 1 : 0;
    }
  }
  ds.x = ml::Matrix(usable_rows, feature_width + 1);

  std::size_t row = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = *workloads[w];
    const std::vector<double> features = workload.domain_features();
    DSEM_ENSURE(features.size() == feature_width,
                "workloads disagree on feature width");
    const FrequencySweep& sweep = sweeps[w];

    ds.group_names.push_back(workload.name());
    ds.default_freq_mhz.push_back(sweep.default_freq_mhz);
    ds.group_default.push_back(sweep.baseline_ok ? sweep.baseline
                                                 : Measurement{});
    if (!sweep.baseline_ok) {
      continue;
    }

    for (const SweepPoint& sp : sweep.points) {
      if (!sp.ok) {
        continue;
      }
      auto dst = ds.x.row(row);
      std::copy(features.begin(), features.end(), dst.begin());
      dst[feature_width] = sp.freq_mhz;
      ds.time_s.push_back(sp.m.time_s);
      ds.energy_j.push_back(sp.m.energy_j);
      ds.groups.push_back(static_cast<int>(w));
      ++row;
    }
  }
  DSEM_ENSURE(row == usable_rows, "dataset row accounting mismatch");
  return ds;
}

Dataset build_dataset(synergy::Device& device,
                      std::span<const std::unique_ptr<Workload>> workloads,
                      int repetitions, std::span<const double> freqs) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  return build_dataset(device, workloads, options, freqs);
}

json::Value dataset_to_json(const Dataset& dataset) {
  DSEM_ENSURE(dataset.x.rows() == dataset.rows() &&
                  dataset.groups.size() == dataset.rows() &&
                  dataset.energy_j.size() == dataset.rows(),
              "dataset_to_json: inconsistent row counts");
  DSEM_ENSURE(dataset.group_default.size() == dataset.num_groups() &&
                  dataset.default_freq_mhz.size() == dataset.num_groups(),
              "dataset_to_json: inconsistent group metadata");

  auto out = json::Value::object();
  out.set("schema", kDatasetSchema);
  out.set("cols", static_cast<double>(dataset.x.cols()));
  auto x = json::Value::array();
  for (std::size_t r = 0; r < dataset.x.rows(); ++r) {
    auto row = json::Value::array();
    for (const double v : dataset.x.row(r)) {
      row.push_back(v);
    }
    x.push_back(std::move(row));
  }
  out.set("x", std::move(x));
  const auto doubles = [](std::span<const double> values) {
    auto arr = json::Value::array();
    for (const double v : values) {
      arr.push_back(v);
    }
    return arr;
  };
  out.set("time_s", doubles(dataset.time_s));
  out.set("energy_j", doubles(dataset.energy_j));
  auto groups = json::Value::array();
  for (const int g : dataset.groups) {
    groups.push_back(static_cast<double>(g));
  }
  out.set("groups", std::move(groups));
  auto names = json::Value::array();
  for (const std::string& name : dataset.group_names) {
    names.push_back(name);
  }
  out.set("group_names", std::move(names));
  std::vector<double> base_t;
  std::vector<double> base_e;
  for (const Measurement& m : dataset.group_default) {
    base_t.push_back(m.time_s);
    base_e.push_back(m.energy_j);
  }
  out.set("group_default_time_s", doubles(base_t));
  out.set("group_default_energy_j", doubles(base_e));
  out.set("default_freq_mhz", doubles(dataset.default_freq_mhz));
  return out;
}

Dataset dataset_from_json(const json::Value& value) {
  DSEM_ENSURE(value.is_object(), "dataset: not a JSON object");
  const json::Value* schema = value.find("schema");
  DSEM_ENSURE(schema != nullptr && schema->is_string(),
              "dataset: missing schema tag");
  DSEM_ENSURE(schema->as_string() == kDatasetSchema,
              "dataset: unsupported schema \"" + schema->as_string() +
                  "\" (this build reads " + kDatasetSchema + ")");

  Dataset out;
  const double cols_d = value.at("cols").as_number();
  DSEM_ENSURE(cols_d >= 2.0, "dataset: needs at least one feature + freq");
  const auto cols = static_cast<std::size_t>(cols_d);
  const auto& x = value.at("x").as_array();
  out.x = ml::Matrix(x.size(), cols);
  for (std::size_t r = 0; r < x.size(); ++r) {
    const auto& row = x[r].as_array();
    DSEM_ENSURE(row.size() == cols, "dataset: ragged feature matrix");
    auto dst = out.x.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      dst[c] = row[c].as_number();
    }
  }
  const auto doubles = [&](const char* key) {
    std::vector<double> values;
    for (const json::Value& v : value.at(key).as_array()) {
      values.push_back(v.as_number());
    }
    return values;
  };
  out.time_s = doubles("time_s");
  out.energy_j = doubles("energy_j");
  for (const json::Value& g : value.at("groups").as_array()) {
    out.groups.push_back(static_cast<int>(g.as_number()));
  }
  for (const json::Value& name : value.at("group_names").as_array()) {
    out.group_names.push_back(name.as_string());
  }
  const std::vector<double> base_t = doubles("group_default_time_s");
  const std::vector<double> base_e = doubles("group_default_energy_j");
  DSEM_ENSURE(base_t.size() == base_e.size(),
              "dataset: mismatched group baselines");
  for (std::size_t g = 0; g < base_t.size(); ++g) {
    out.group_default.push_back({base_t[g], base_e[g]});
  }
  out.default_freq_mhz = doubles("default_freq_mhz");

  DSEM_ENSURE(out.time_s.size() == out.x.rows() &&
                  out.energy_j.size() == out.x.rows() &&
                  out.groups.size() == out.x.rows(),
              "dataset: inconsistent row counts");
  DSEM_ENSURE(out.group_default.size() == out.num_groups() &&
                  out.default_freq_mhz.size() == out.num_groups(),
              "dataset: inconsistent group metadata");
  for (const int g : out.groups) {
    DSEM_ENSURE(g >= 0 && static_cast<std::size_t>(g) < out.num_groups(),
                "dataset: row group id out of range");
  }
  return out;
}

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  DSEM_ENSURE(out.good(), "cannot open dataset for writing: " + path);
  dataset_to_json(dataset).write(out, 2);
  out << "\n";
  DSEM_ENSURE(out.good(), "failed writing dataset: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  DSEM_ENSURE(in.good(), "cannot open dataset: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  DSEM_ENSURE(!in.bad(), "failed reading dataset: " + path);
  return dataset_from_json(json::Value::parse(buffer.str()));
}

} // namespace dsem::core
