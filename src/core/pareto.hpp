// Pareto-front extraction and front-quality metrics for the bi-objective
// (speedup: maximize, normalized energy: minimize) space of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsem::core {

/// Indices of the non-dominated points of (speedup[i], energy[i]), where a
/// point dominates another if it has >= speedup and <= energy with at
/// least one strict inequality. Returned sorted by ascending speedup.
std::vector<std::size_t> pareto_front(std::span<const double> speedup,
                                      std::span<const double> energy);

/// True iff point (s, e) is dominated by any point in the front arrays.
bool is_dominated(double s, double e, std::span<const double> front_speedup,
                  std::span<const double> front_energy);

/// How well a *predicted* Pareto frequency set approximates the true one
/// (§5.2.2): exact frequency matches, plus the generational distance of
/// the predicted points' *actual measured* objectives to the true front.
struct ParetoComparison {
  std::size_t true_size = 0;      ///< |true Pareto set|
  std::size_t predicted_size = 0; ///< |predicted Pareto set|
  std::size_t exact_matches = 0;  ///< predicted freqs that are truly optimal
  double generational_distance = 0.0; ///< mean nearest-true-point distance
};

/// `true_front` / `predicted` index into the same (speedup, energy) value
/// arrays: the measured objectives at every frequency.
ParetoComparison compare_pareto(std::span<const double> speedup,
                                std::span<const double> energy,
                                std::span<const std::size_t> true_front,
                                std::span<const std::size_t> predicted);

} // namespace dsem::core
