#include "core/measurement.hpp"

#include "common/error.hpp"
#include "core/sweep.hpp"

namespace dsem::core {

Measurement measure_run(synergy::Device& device, const RunFn& run,
                        int repetitions, sim::ProfileCache* cache) {
  DSEM_ENSURE(repetitions >= 1, "repetitions must be >= 1");
  DSEM_ENSURE(static_cast<bool>(run), "measure_run requires a run function");
  Measurement acc;
  for (int r = 0; r < repetitions; ++r) {
    synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
    queue.set_profile_cache(cache);
    run(queue);
    acc.time_s += queue.total_time_s();
    acc.energy_j += queue.total_energy_j();
  }
  acc.time_s /= repetitions;
  acc.energy_j /= repetitions;
  return acc;
}

Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions,
                    sim::ProfileCache* cache) {
  device.set_frequency(freq_mhz);
  const Measurement m = measure_run(
      device, [&](synergy::Queue& q) { workload.submit(q); }, repetitions,
      cache);
  device.reset_frequency();
  return m;
}

Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions, sim::ProfileCache* cache) {
  device.reset_frequency();
  return measure_run(
      device, [&](synergy::Queue& q) { workload.submit(q); }, repetitions,
      cache);
}

std::vector<SweepPoint> sweep_frequencies(synergy::Device& device,
                                          const Workload& workload,
                                          int repetitions,
                                          std::span<const double> freqs) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  FrequencySweep sweep = sweep_workload(device, workload, freqs, options);
  return std::move(sweep.points);
}

} // namespace dsem::core
