#include "core/measurement.hpp"

#include "common/error.hpp"

namespace dsem::core {

namespace {

Measurement run_once(synergy::Device& device, const Workload& workload) {
  synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
  workload.submit(queue);
  return Measurement{queue.total_time_s(), queue.total_energy_j()};
}

Measurement run_repeated(synergy::Device& device, const Workload& workload,
                         int repetitions) {
  DSEM_ENSURE(repetitions >= 1, "repetitions must be >= 1");
  Measurement acc;
  for (int r = 0; r < repetitions; ++r) {
    const Measurement m = run_once(device, workload);
    acc.time_s += m.time_s;
    acc.energy_j += m.energy_j;
  }
  acc.time_s /= repetitions;
  acc.energy_j /= repetitions;
  return acc;
}

} // namespace

Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions) {
  device.set_frequency(freq_mhz);
  const Measurement m = run_repeated(device, workload, repetitions);
  device.reset_frequency();
  return m;
}

Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions) {
  device.reset_frequency();
  return run_repeated(device, workload, repetitions);
}

std::vector<SweepPoint> sweep_frequencies(synergy::Device& device,
                                          const Workload& workload,
                                          int repetitions,
                                          std::span<const double> freqs) {
  std::vector<double> all;
  if (freqs.empty()) {
    all = device.supported_frequencies();
    freqs = all;
  }
  std::vector<SweepPoint> sweep;
  sweep.reserve(freqs.size());
  for (double f : freqs) {
    sweep.push_back({f, measure(device, workload, f, repetitions)});
  }
  return sweep;
}

} // namespace dsem::core
