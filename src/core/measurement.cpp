#include "core/measurement.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/sweep.hpp"
#include "sim/fault.hpp"

namespace dsem::core {

namespace {

/// Records one failed attempt; throws MeasurementError when the policy is
/// spent, otherwise accounts the simulated backoff before the retry.
/// The trace counters here ARE the RetryStats fields (one metrics source
/// of truth): retry.faults / retry.retries / retry.backoff_s accumulate
/// exactly what the sweep report aggregates.
void absorb_fault(const sim::TransientFault& fault, int attempt,
                  const RetryPolicy& policy, RetryStats* stats,
                  const char* operation) {
  if (stats != nullptr) {
    ++stats->faults;
  }
  trace::counter("retry.faults", 1.0);
  metrics::counter("retry.faults");
  if (attempt >= policy.max_attempts) {
    trace::instant("retry.exhausted", trace::cat::kMeasure);
    throw MeasurementError(std::string(operation) + " failed after " +
                           std::to_string(attempt) + " attempts: " +
                           fault.what());
  }
  const double backoff = policy.backoff_for(attempt);
  if (stats != nullptr) {
    ++stats->retries;
    stats->simulated_backoff_s += backoff;
  }
  trace::counter("retry.retries", 1.0);
  trace::counter("retry.backoff_s", backoff);
  // Faults are drawn from the replica device's seeded stream, so retry
  // accounting is deterministic (same contract as RetryStats).
  if (metrics::enabled()) {
    metrics::counter("retry.retries");
    metrics::histogram("retry.backoff_s", backoff);
  }
}

} // namespace

void set_frequency_with_retry(synergy::Device& device, double freq_mhz,
                              const RetryPolicy& policy, RetryStats* stats) {
  DSEM_ENSURE(policy.max_attempts >= 1, "max_attempts must be >= 1");
  trace::Span span("measure.set_frequency", trace::cat::kMeasure);
  span.value(freq_mhz);
  for (int attempt = 1;; ++attempt) {
    if (stats != nullptr) {
      ++stats->attempts;
    }
    trace::counter("retry.attempts", 1.0);
    metrics::counter("retry.attempts");
    try {
      device.set_frequency(freq_mhz);
      return;
    } catch (const sim::TransientFault& fault) {
      absorb_fault(fault, attempt, policy, stats, "set_frequency");
    }
  }
}

Measurement measure_run(synergy::Device& device, const RunFn& run,
                        int repetitions, sim::ProfileCache* cache,
                        const RetryPolicy& retry, RetryStats* stats) {
  DSEM_ENSURE(repetitions >= 1, "repetitions must be >= 1");
  DSEM_ENSURE(retry.max_attempts >= 1, "max_attempts must be >= 1");
  DSEM_ENSURE(static_cast<bool>(run), "measure_run requires a run function");
  trace::Span span("measure.run", trace::cat::kMeasure);
  span.value(repetitions);
  Measurement acc;
  for (int r = 0; r < repetitions; ++r) {
    for (int attempt = 1;; ++attempt) {
      if (stats != nullptr) {
        ++stats->attempts;
      }
      trace::counter("retry.attempts", 1.0);
      metrics::counter("retry.attempts");
      try {
        synergy::Queue queue(device, synergy::ExecMode::kSimOnly);
        queue.set_profile_cache(cache);
        run(queue);
        const double t = queue.total_time_s();
        const double e = queue.total_energy_j();
        // Defense in depth behind the queue's per-launch validation: a
        // degenerate repetition total is a failed measurement, not data.
        if (!(std::isfinite(t) && t > 0.0 && std::isfinite(e) && e > 0.0)) {
          throw sim::TransientFault(
              sim::FaultKind::kEnergyRead,
              "degenerate repetition totals: time=" + std::to_string(t) +
                  " s, energy=" + std::to_string(e) + " J");
        }
        acc.time_s += t;
        acc.energy_j += e;
        break;
      } catch (const sim::TransientFault& fault) {
        absorb_fault(fault, attempt, retry, stats, "measure_run repetition");
      }
    }
  }
  acc.time_s /= repetitions;
  acc.energy_j /= repetitions;
  // Averaged simulated totals: deterministic like the per-launch values.
  if (metrics::enabled()) {
    metrics::histogram("measure.time_s", acc.time_s);
    metrics::histogram("measure.energy_j", acc.energy_j);
  }
  return acc;
}

Measurement measure(synergy::Device& device, const Workload& workload,
                    double freq_mhz, int repetitions,
                    sim::ProfileCache* cache, const RetryPolicy& retry,
                    RetryStats* stats) {
  set_frequency_with_retry(device, freq_mhz, retry, stats);
  const Measurement m = measure_run(
      device, [&](synergy::Queue& q) { workload.submit(q); }, repetitions,
      cache, retry, stats);
  device.reset_frequency();
  return m;
}

Measurement measure_default(synergy::Device& device, const Workload& workload,
                            int repetitions, sim::ProfileCache* cache,
                            const RetryPolicy& retry, RetryStats* stats) {
  device.reset_frequency();
  return measure_run(
      device, [&](synergy::Queue& q) { workload.submit(q); }, repetitions,
      cache, retry, stats);
}

std::vector<SweepPoint> sweep_frequencies(synergy::Device& device,
                                          const Workload& workload,
                                          int repetitions,
                                          std::span<const double> freqs) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  FrequencySweep sweep = sweep_workload(device, workload, freqs, options);
  return std::move(sweep.points);
}

} // namespace dsem::core
