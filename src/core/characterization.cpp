#include "core/characterization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsem::core {

std::vector<std::size_t> Characterization::pareto_indices() const {
  if (points.empty()) {
    return {};
  }
  std::vector<double> s;
  std::vector<double> e;
  s.reserve(points.size());
  e.reserve(points.size());
  for (const auto& p : points) {
    s.push_back(p.speedup);
    e.push_back(p.norm_energy);
  }
  return pareto_front(s, e);
}

const CharacterizationPoint&
Characterization::at_freq(double freq_mhz) const {
  DSEM_ENSURE(!points.empty(), "empty characterization");
  const auto it = std::min_element(
      points.begin(), points.end(), [&](const auto& a, const auto& b) {
        return std::abs(a.freq_mhz - freq_mhz) < std::abs(b.freq_mhz - freq_mhz);
      });
  return *it;
}

double Characterization::best_energy_saving(double max_speedup_loss) const {
  double best = 0.0;
  for (const auto& p : points) {
    if (1.0 - p.speedup <= max_speedup_loss) {
      best = std::max(best, 1.0 - p.norm_energy);
    }
  }
  return best;
}

double Characterization::best_speedup_gain() const {
  double best = 0.0;
  for (const auto& p : points) {
    best = std::max(best, p.speedup - 1.0);
  }
  return best;
}

Characterization characterize(synergy::Device& device,
                              const Workload& workload,
                              const SweepOptions& options,
                              std::span<const double> freqs) {
  const FrequencySweep sweep = sweep_workload(device, workload, freqs, options);
  const Measurement& base = sweep.baseline;

  Characterization out;
  out.default_freq_mhz = sweep.default_freq_mhz;
  if (!sweep.baseline_ok) {
    // No baseline, nothing to normalize against: every swept frequency is
    // lost for this workload, but the sweep itself carries on.
    out.baseline_ok = false;
    out.failed_freqs.reserve(sweep.points.size());
    for (const SweepPoint& sp : sweep.points) {
      out.failed_freqs.push_back(sp.freq_mhz);
    }
    return out;
  }
  DSEM_ENSURE(base.time_s > 0.0 && base.energy_j > 0.0,
              "degenerate baseline measurement");
  out.default_time_s = base.time_s;
  out.default_energy_j = base.energy_j;
  out.points.reserve(sweep.points.size());
  for (const SweepPoint& sp : sweep.points) {
    if (!sp.ok) {
      out.failed_freqs.push_back(sp.freq_mhz);
      continue;
    }
    CharacterizationPoint p;
    p.freq_mhz = sp.freq_mhz;
    p.time_s = sp.m.time_s;
    p.energy_j = sp.m.energy_j;
    p.speedup = base.time_s / sp.m.time_s;
    p.norm_energy = sp.m.energy_j / base.energy_j;
    out.points.push_back(p);
  }
  for (std::size_t idx : out.pareto_indices()) {
    out.points[idx].pareto = true;
  }
  return out;
}

Characterization characterize(synergy::Device& device,
                              const Workload& workload, int repetitions,
                              std::span<const double> freqs) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  return characterize(device, workload, options, freqs);
}

} // namespace dsem::core
