// Per-kernel frequency planning — the paper's §7 future work, realized.
//
// A whole-application frequency is a compromise: Cronos' computeChanges is
// memory-bound (happy to down-clock) while integrateTime's share of launch
// overhead differs, and LiGen's dock is compute-bound while score is not.
// The planner characterizes each distinct kernel of a workload separately
// across the frequency schedule and picks, per kernel, the energy-minimal
// frequency whose kernel-level slowdown stays within the budget. The
// resulting plan feeds synergy::Queue::set_kernel_frequency_plan, which
// retargets the clock before each launch (switch penalties included by
// the device model).
#pragma once

#include <map>
#include <string>

#include "core/measurement.hpp"

namespace dsem::core {

struct KernelPlan {
  std::map<std::string, double> freq_by_kernel; ///< kernel name -> MHz
  /// Predicted per-kernel energy saving (fraction) used when planning.
  std::map<std::string, double> predicted_saving;
};

/// Builds a per-kernel plan for `workload` on `device`: for every distinct
/// kernel in the workload's submission stream, sweep the schedule (every
/// `freq_stride`-th frequency) and keep the energy-minimal configuration
/// with kernel slowdown <= max_slowdown vs the default clock.
KernelPlan plan_kernel_frequencies(synergy::Device& device,
                                   const Workload& workload,
                                   double max_slowdown,
                                   int repetitions = kDefaultRepetitions,
                                   std::size_t freq_stride = 4);

/// Measures the workload with the plan applied (per-kernel retargeting,
/// switch penalties included).
Measurement measure_with_plan(synergy::Device& device,
                              const Workload& workload,
                              const KernelPlan& plan,
                              int repetitions = kDefaultRepetitions);

} // namespace dsem::core
