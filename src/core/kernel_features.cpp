#include "core/kernel_features.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "sim/execution_model.hpp"

namespace dsem::core {

namespace {

/// Canonical total order over launch classes: accumulation below walks the
/// sorted copy, so the block is bit-identical under any permutation of the
/// input list (FP sums are order-sensitive; the order must not leak in).
bool launch_less(const KernelLaunch& a, const KernelLaunch& b) {
  const auto key = [](const KernelLaunch& l) {
    return std::tuple(l.profile.name, l.work_items, l.launches,
                      l.profile.int_add, l.profile.int_mul, l.profile.int_div,
                      l.profile.int_bw, l.profile.float_add,
                      l.profile.float_mul, l.profile.float_div,
                      l.profile.special_fn, l.profile.global_bytes,
                      l.profile.local_bytes, l.profile.intra_item_parallelism);
  };
  return key(a) < key(b);
}

} // namespace

std::vector<std::string> hybrid_feature_names() {
  return {
      // Static: launch geometry and instruction/memory mix.
      "hy_log_work_items",   ///< log1p(total work items per run)
      "hy_log_launches",     ///< log1p(kernel launches per run)
      "hy_flop_fraction",    ///< flops / total arithmetic ops (work-weighted)
      "hy_arith_intensity",  ///< log1p(flops per global byte), damped
      "hy_mem_per_op",       ///< log1p(global bytes per arithmetic op)
      "hy_local_fraction",   ///< local / (global + local) traffic
      // Dynamic: the default-clock profile run (noise-free roofline).
      "hy_compute_util",     ///< time-share-weighted compute utilization
      "hy_mem_util",         ///< time-share-weighted DRAM utilization
      "hy_membound_share",   ///< time share of memory-bound kernels
      "hy_overhead_share",   ///< launch-overhead share of total time
      "hy_occupancy",        ///< time-share-weighted achieved occupancy
      "hy_top_kernel_share", ///< largest single launch class's time share
      "hy_log_ref_time",     ///< log(default-clock run time)
  };
}

std::vector<double> hybrid_feature_block(std::span<const KernelLaunch> launches,
                                         const sim::DeviceSpec& spec,
                                         double default_freq_mhz) {
  DSEM_ENSURE(!launches.empty(),
              "hybrid_feature_block: empty kernel launch list");
  DSEM_ENSURE(default_freq_mhz > 0.0,
              "hybrid_feature_block: non-positive default clock");

  std::vector<KernelLaunch> sorted(launches.begin(), launches.end());
  std::sort(sorted.begin(), sorted.end(), launch_less);

  // Static accumulation: per-run totals over all launch classes.
  double work_items = 0.0;
  double launch_count = 0.0;
  double ops = 0.0;
  double flops = 0.0;
  double global_bytes = 0.0;
  double local_bytes = 0.0;
  // Dynamic accumulation: one noise-free default-clock execution per class.
  double total_s = 0.0;
  double launch_s = 0.0;
  double compute_util_s = 0.0;
  double mem_util_s = 0.0;
  double membound_s = 0.0;
  double occupancy_s = 0.0;
  double top_class_s = 0.0;
  const auto lanes = static_cast<double>(spec.total_lanes());

  for (const KernelLaunch& l : sorted) {
    DSEM_ENSURE(l.work_items > 0, "hybrid_feature_block: launch class \"" +
                                      l.profile.name + "\" has no work items");
    DSEM_ENSURE(l.launches > 0.0 && std::isfinite(l.launches),
                "hybrid_feature_block: bad launch count for \"" +
                    l.profile.name + "\"");
    sim::validate(l.profile);
    const double items = static_cast<double>(l.work_items) * l.launches;
    work_items += items;
    launch_count += l.launches;
    ops += l.profile.total_ops() * items;
    flops += l.profile.flops() * items;
    global_bytes += l.profile.global_bytes * items;
    local_bytes += l.profile.local_bytes * items;

    const sim::ExecutionBreakdown bd =
        sim::execute(spec, l.profile, l.work_items, default_freq_mhz);
    const double class_s = bd.total_s * l.launches;
    total_s += class_s;
    launch_s += bd.launch_s * l.launches;
    compute_util_s += bd.compute_utilization() * class_s;
    mem_util_s += bd.memory_utilization() * class_s;
    membound_s += bd.mem_bw_s >= bd.compute_tp_s ? class_s : 0.0;
    occupancy_s +=
        std::min(1.0, static_cast<double>(l.work_items) *
                          l.profile.intra_item_parallelism / lanes) *
        class_s;
    top_class_s = std::max(top_class_s, class_s);
  }
  DSEM_ASSERT(total_s > 0.0, "execution model produced a zero-time run");

  // Ratio denominators are clamped away from zero so a pure-compute or
  // zero-op profile still yields finite features.
  const double safe_ops = std::max(ops, 1.0);
  return {
      std::log1p(work_items),
      std::log1p(launch_count),
      flops / safe_ops,
      std::log1p(flops / (1.0 + global_bytes)),
      std::log1p(global_bytes / safe_ops),
      local_bytes / std::max(global_bytes + local_bytes, 1.0),
      compute_util_s / total_s,
      mem_util_s / total_s,
      membound_s / total_s,
      launch_s / total_s,
      occupancy_s / total_s,
      top_class_s / total_s,
      std::log(total_s),
  };
}

std::vector<double> fused_feature_vector(const Workload& workload,
                                         const sim::DeviceSpec& spec,
                                         double default_freq_mhz) {
  std::vector<double> out = workload.domain_features();
  const std::vector<double> block =
      hybrid_feature_block(workload.kernel_launches(), spec, default_freq_mhz);
  out.insert(out.end(), block.begin(), block.end());
  return out;
}

std::vector<std::string> fused_feature_names(const Workload& workload) {
  std::vector<std::string> out = workload.feature_names();
  const std::vector<std::string> block = hybrid_feature_names();
  out.insert(out.end(), block.begin(), block.end());
  return out;
}

} // namespace dsem::core
