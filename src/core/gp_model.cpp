#include "core/gp_model.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/features.hpp"
#include "core/sweep.hpp"
#include "ml/serialize.hpp"

namespace dsem::core {

namespace {

ml::ForestParams default_forest_params() {
  ml::ForestParams params;
  params.n_estimators = 100;
  params.max_depth = 0;
  params.seed = 0x69e0;
  return params;
}

} // namespace

GeneralPurposeModel::GeneralPurposeModel(const ml::Regressor& prototype)
    : speedup_model_(prototype.clone()), energy_model_(prototype.clone()) {}

GeneralPurposeModel::GeneralPurposeModel()
    : GeneralPurposeModel(ml::RandomForestRegressor(default_forest_params())) {}

void GeneralPurposeModel::train(
    synergy::Device& device,
    std::span<const microbench::MicroBenchmark> suite, int repetitions,
    std::size_t freq_stride) {
  sim::ProfileCache cache;
  SweepOptions options;
  options.repetitions = repetitions;
  options.cache = &cache;
  train(device, suite, options, freq_stride);
}

void GeneralPurposeModel::train(
    synergy::Device& device,
    std::span<const microbench::MicroBenchmark> suite,
    const SweepOptions& options, std::size_t freq_stride) {
  DSEM_ENSURE(!suite.empty(), "training on an empty micro-benchmark suite");
  DSEM_ENSURE(options.repetitions >= 1, "repetitions must be >= 1");
  DSEM_ENSURE(freq_stride >= 1, "freq_stride must be >= 1");
  trace::Span span("train.gp", trace::cat::kTrain);
  span.value(static_cast<double>(suite.size()));
  metrics::ScopedTimer timer("train.gp_s");

  const std::vector<double> all_freqs = device.supported_frequencies();
  std::vector<double> freqs;
  for (std::size_t i = 0; i < all_freqs.size(); i += freq_stride) {
    freqs.push_back(all_freqs[i]);
  }

  // One sweep task per micro-benchmark; the engine measures the baseline
  // and every strided frequency in parallel on deterministic replicas.
  std::vector<SweepTask> tasks;
  tasks.reserve(suite.size());
  for (const microbench::MicroBenchmark& mb : suite) {
    tasks.push_back({[&mb](synergy::Queue& queue) {
      queue.submit({mb.profile, mb.work_items, {}});
    }});
  }
  const std::vector<FrequencySweep> sweeps =
      sweep_grid(device, tasks, freqs, options);

  // Failed grid points are dropped from the training set; a kernel with a
  // failed baseline has nothing to normalize against and drops entirely.
  std::size_t usable_rows = 0;
  for (const FrequencySweep& sweep : sweeps) {
    if (!sweep.baseline_ok) {
      continue;
    }
    for (const SweepPoint& sp : sweep.points) {
      usable_rows += sp.ok ? 1 : 0;
    }
  }
  DSEM_ENSURE(usable_rows > 0,
              "no micro-benchmark measurements survived the sweep");

  ml::Matrix x(usable_rows, sim::kNumStaticFeatures + 1);
  std::vector<double> y_speedup;
  std::vector<double> y_energy;
  y_speedup.reserve(usable_rows);
  y_energy.reserve(usable_rows);

  std::size_t row = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const FrequencySweep& sweep = sweeps[i];
    if (!sweep.baseline_ok) {
      continue;
    }
    const Measurement& base = sweep.baseline;
    DSEM_ENSURE(base.time_s > 0.0 && base.energy_j > 0.0,
                "degenerate baseline");
    const std::vector<double> features =
        static_feature_vector(suite[i].profile);

    for (const SweepPoint& sp : sweep.points) {
      if (!sp.ok) {
        continue;
      }
      auto dst = x.row(row);
      std::copy(features.begin(), features.end(), dst.begin());
      dst[sim::kNumStaticFeatures] = sp.freq_mhz;
      y_speedup.push_back(base.time_s / sp.m.time_s);
      y_energy.push_back(sp.m.energy_j / base.energy_j);
      ++row;
    }
  }
  device.reset_frequency();

  speedup_model_->fit(x, y_speedup);
  energy_model_->fit(x, y_energy);
  training_rows_ = row;
  trained_ = true;
}

json::Value GeneralPurposeModel::to_json() const {
  DSEM_ENSURE(trained_, "serialize of an untrained GeneralPurposeModel");
  auto out = json::Value::object();
  out.set("training_rows", training_rows_);
  out.set("speedup", ml::regressor_to_json(*speedup_model_));
  out.set("energy", ml::regressor_to_json(*energy_model_));
  return out;
}

GeneralPurposeModel GeneralPurposeModel::from_json(const json::Value& value) {
  GeneralPurposeModel model;
  model.speedup_model_ = ml::regressor_from_json(value.at("speedup"));
  model.energy_model_ = ml::regressor_from_json(value.at("energy"));
  model.training_rows_ =
      static_cast<std::size_t>(value.at("training_rows").as_number());
  model.trained_ = true;
  return model;
}

Prediction GeneralPurposeModel::predict(const sim::KernelProfile& profile,
                                        std::span<const double> freqs_mhz,
                                        double default_freq_mhz) const {
  DSEM_ENSURE(trained_, "predict on an untrained GeneralPurposeModel");
  DSEM_ENSURE(!freqs_mhz.empty(), "predict over an empty frequency list");

  Prediction out;
  out.freqs_mhz.assign(freqs_mhz.begin(), freqs_mhz.end());
  const std::vector<double> features = static_feature_vector(profile);

  // One batch for the whole frequency grid, baseline row first: each row
  // is an independent predict_one, so batching changes nothing but speed.
  ml::Matrix queries(freqs_mhz.size() + 1, features.size() + 1);
  for (std::size_t i = 0; i <= freqs_mhz.size(); ++i) {
    auto row = queries.row(i);
    std::copy(features.begin(), features.end(), row.begin());
    row.back() = i == 0 ? default_freq_mhz : freqs_mhz[i - 1];
  }
  const std::vector<double> s_pred = speedup_model_->predict_many(queries);
  const std::vector<double> e_pred = energy_model_->predict_many(queries);

  // Normalize against the model's own output at the default frequency so
  // the predicted curve satisfies speedup(default) = norm_energy(default)
  // = 1 exactly, like the measured curves do.
  const double s_base = s_pred.front();
  const double e_base = e_pred.front();
  DSEM_ENSURE(s_base > 0.0 && e_base > 0.0,
              "non-positive predicted baseline");

  out.speedup.reserve(freqs_mhz.size());
  out.norm_energy.reserve(freqs_mhz.size());
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    out.speedup.push_back(s_pred[i + 1] / s_base);
    out.norm_energy.push_back(e_pred[i + 1] / e_base);
  }
  return out;
}

} // namespace dsem::core
