// Fused static+dynamic feature extraction for the hybrid model family
// (DSO-style, arXiv 2407.13096; DESIGN.md §7.13).
//
// The static half comes from the per-kernel launch list a workload
// declares (Workload::kernel_launches()): instruction mix, memory mix,
// arithmetic intensity, and launch geometry — what Fan et al.'s static
// analysis sees. The dynamic half is what one profiled run at the default
// clock would report: per-kernel compute/memory utilization, achieved
// occupancy, memory-bound time share, launch-overhead share, and the
// run's reference time, all derived from the noise-free roofline
// execution model (sim::execute) so they are available — and bit-stable —
// at both training and serving time.
//
// Contract: hybrid_feature_block is a pure function of (launches, spec,
// default_freq_mhz) and is bit-identical under any permutation of the
// launch list (it accumulates over a canonically sorted copy). Every
// feature is finite for any launch list that passes validation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "sim/device_spec.hpp"

namespace dsem::core {

/// Names of the fused static+dynamic block, in emission order.
std::vector<std::string> hybrid_feature_names();

/// The fused feature block for one run described by `launches`, profiled
/// (noise-free) on `spec` at `default_freq_mhz`. Throws contract_error for
/// an empty launch list, non-positive work-item counts or launch counts,
/// or a non-positive default clock.
std::vector<double> hybrid_feature_block(std::span<const KernelLaunch> launches,
                                         const sim::DeviceSpec& spec,
                                         double default_freq_mhz);

/// Full fused vector for one workload: [domain features..., hybrid block].
/// This is the per-input prefix of a hybrid training/query row (the row
/// appends the frequency).
std::vector<double> fused_feature_vector(const Workload& workload,
                                         const sim::DeviceSpec& spec,
                                         double default_freq_mhz);

/// Names matching fused_feature_vector().
std::vector<std::string> fused_feature_names(const Workload& workload);

} // namespace dsem::core
