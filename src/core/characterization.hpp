// Speedup / normalized-energy characterization of a workload across the
// full frequency schedule of a device — the machinery behind every
// scatter plot of the paper (Figs. 1-10).
#pragma once

#include "core/measurement.hpp"
#include "core/pareto.hpp"
#include "core/sweep.hpp"

namespace dsem::core {

struct CharacterizationPoint {
  double freq_mhz = 0.0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double speedup = 0.0;     ///< t_default / t
  double norm_energy = 0.0; ///< e / e_default
  bool pareto = false;      ///< member of the non-dominated front
};

struct Characterization {
  std::vector<CharacterizationPoint> points; ///< ascending frequency
  double default_freq_mhz = 0.0;
  double default_time_s = 0.0;
  double default_energy_j = 0.0;
  /// False when the default-clock baseline exhausted its retries; the
  /// characterization then has no points (nothing to normalize against).
  bool baseline_ok = true;
  /// Frequencies whose grid point exhausted its retries (absent from
  /// `points`). Every swept frequency when the baseline failed.
  std::vector<double> failed_freqs;

  std::vector<std::size_t> pareto_indices() const;
  const CharacterizationPoint& at_freq(double freq_mhz) const;

  /// Best achievable energy saving (1 - min norm_energy) among points
  /// whose speedup loss does not exceed `max_speedup_loss`.
  double best_energy_saving(double max_speedup_loss = 1.0) const;

  /// Best achievable speedup - 1 over the whole sweep.
  double best_speedup_gain() const;
};

/// Full-sweep characterization: every supported frequency (or `freqs`),
/// normalized against the device's default/auto configuration. Runs the
/// grid through the deterministic parallel sweep engine — see
/// core/sweep.hpp for the pool/cache knobs and the determinism contract.
Characterization characterize(synergy::Device& device,
                              const Workload& workload,
                              const SweepOptions& options,
                              std::span<const double> freqs = {});

/// Convenience overload: default sweep options with `repetitions` and a
/// sweep-local profile cache.
Characterization characterize(synergy::Device& device,
                              const Workload& workload,
                              int repetitions = kDefaultRepetitions,
                              std::span<const double> freqs = {});

} // namespace dsem::core
