# Empty compiler generated dependencies file for table2_domain_features.
# This may be replaced when dependencies are built.
