# Empty compiler generated dependencies file for fig07_ligen_frags_mi100.
# This may be replaced when dependencies are built.
