file(REMOVE_RECURSE
  "../bench/fig07_ligen_frags_mi100"
  "../bench/fig07_ligen_frags_mi100.pdb"
  "CMakeFiles/fig07_ligen_frags_mi100.dir/fig07_ligen_frags_mi100.cpp.o"
  "CMakeFiles/fig07_ligen_frags_mi100.dir/fig07_ligen_frags_mi100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ligen_frags_mi100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
