# Empty compiler generated dependencies file for perf_ligen.
# This may be replaced when dependencies are built.
