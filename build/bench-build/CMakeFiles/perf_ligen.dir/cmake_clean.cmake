file(REMOVE_RECURSE
  "../bench/perf_ligen"
  "../bench/perf_ligen.pdb"
  "CMakeFiles/perf_ligen.dir/perf_ligen.cpp.o"
  "CMakeFiles/perf_ligen.dir/perf_ligen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ligen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
