file(REMOVE_RECURSE
  "../bench/ablation_forest"
  "../bench/ablation_forest.pdb"
  "CMakeFiles/ablation_forest.dir/ablation_forest.cpp.o"
  "CMakeFiles/ablation_forest.dir/ablation_forest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
