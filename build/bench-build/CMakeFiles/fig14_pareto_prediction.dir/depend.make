# Empty dependencies file for fig14_pareto_prediction.
# This may be replaced when dependencies are built.
