file(REMOVE_RECURSE
  "../bench/fig14_pareto_prediction"
  "../bench/fig14_pareto_prediction.pdb"
  "CMakeFiles/fig14_pareto_prediction.dir/fig14_pareto_prediction.cpp.o"
  "CMakeFiles/fig14_pareto_prediction.dir/fig14_pareto_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pareto_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
