file(REMOVE_RECURSE
  "../bench/extension_distributed_scaling"
  "../bench/extension_distributed_scaling.pdb"
  "CMakeFiles/extension_distributed_scaling.dir/extension_distributed_scaling.cpp.o"
  "CMakeFiles/extension_distributed_scaling.dir/extension_distributed_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_distributed_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
