# Empty compiler generated dependencies file for extension_distributed_scaling.
# This may be replaced when dependencies are built.
