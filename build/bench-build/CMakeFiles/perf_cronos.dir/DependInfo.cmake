
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_cronos.cpp" "bench-build/CMakeFiles/perf_cronos.dir/perf_cronos.cpp.o" "gcc" "bench-build/CMakeFiles/perf_cronos.dir/perf_cronos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cronos/CMakeFiles/dsem_cronos.dir/DependInfo.cmake"
  "/root/repo/build/src/ligen/CMakeFiles/dsem_ligen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dsem_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/synergy/CMakeFiles/dsem_synergy.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/dsem_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
