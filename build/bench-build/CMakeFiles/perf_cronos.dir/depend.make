# Empty dependencies file for perf_cronos.
# This may be replaced when dependencies are built.
