file(REMOVE_RECURSE
  "../bench/perf_cronos"
  "../bench/perf_cronos.pdb"
  "CMakeFiles/perf_cronos.dir/perf_cronos.cpp.o"
  "CMakeFiles/perf_cronos.dir/perf_cronos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cronos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
