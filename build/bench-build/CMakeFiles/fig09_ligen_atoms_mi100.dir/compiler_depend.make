# Empty compiler generated dependencies file for fig09_ligen_atoms_mi100.
# This may be replaced when dependencies are built.
