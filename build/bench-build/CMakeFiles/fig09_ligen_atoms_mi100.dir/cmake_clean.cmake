file(REMOVE_RECURSE
  "../bench/fig09_ligen_atoms_mi100"
  "../bench/fig09_ligen_atoms_mi100.pdb"
  "CMakeFiles/fig09_ligen_atoms_mi100.dir/fig09_ligen_atoms_mi100.cpp.o"
  "CMakeFiles/fig09_ligen_atoms_mi100.dir/fig09_ligen_atoms_mi100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ligen_atoms_mi100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
