file(REMOVE_RECURSE
  "../bench/table1_static_features"
  "../bench/table1_static_features.pdb"
  "CMakeFiles/table1_static_features.dir/table1_static_features.cpp.o"
  "CMakeFiles/table1_static_features.dir/table1_static_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_static_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
