# Empty dependencies file for table1_static_features.
# This may be replaced when dependencies are built.
