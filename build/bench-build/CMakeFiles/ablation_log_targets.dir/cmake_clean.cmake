file(REMOVE_RECURSE
  "../bench/ablation_log_targets"
  "../bench/ablation_log_targets.pdb"
  "CMakeFiles/ablation_log_targets.dir/ablation_log_targets.cpp.o"
  "CMakeFiles/ablation_log_targets.dir/ablation_log_targets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_log_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
