# Empty compiler generated dependencies file for ablation_log_targets.
# This may be replaced when dependencies are built.
