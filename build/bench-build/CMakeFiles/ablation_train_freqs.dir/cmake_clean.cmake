file(REMOVE_RECURSE
  "../bench/ablation_train_freqs"
  "../bench/ablation_train_freqs.pdb"
  "CMakeFiles/ablation_train_freqs.dir/ablation_train_freqs.cpp.o"
  "CMakeFiles/ablation_train_freqs.dir/ablation_train_freqs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_train_freqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
