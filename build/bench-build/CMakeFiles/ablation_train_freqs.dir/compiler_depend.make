# Empty compiler generated dependencies file for ablation_train_freqs.
# This may be replaced when dependencies are built.
