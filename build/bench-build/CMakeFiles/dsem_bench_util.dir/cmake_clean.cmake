file(REMOVE_RECURSE
  "CMakeFiles/dsem_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/dsem_bench_util.dir/bench_util.cpp.o.d"
  "libdsem_bench_util.a"
  "libdsem_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
