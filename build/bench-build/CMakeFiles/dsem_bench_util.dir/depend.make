# Empty dependencies file for dsem_bench_util.
# This may be replaced when dependencies are built.
