file(REMOVE_RECURSE
  "libdsem_bench_util.a"
)
