# Empty compiler generated dependencies file for table_regressor_selection.
# This may be replaced when dependencies are built.
