file(REMOVE_RECURSE
  "../bench/table_regressor_selection"
  "../bench/table_regressor_selection.pdb"
  "CMakeFiles/table_regressor_selection.dir/table_regressor_selection.cpp.o"
  "CMakeFiles/table_regressor_selection.dir/table_regressor_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_regressor_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
