# Empty dependencies file for fig10_ligen_ligands.
# This may be replaced when dependencies are built.
