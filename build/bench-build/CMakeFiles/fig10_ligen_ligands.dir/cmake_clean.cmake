file(REMOVE_RECURSE
  "../bench/fig10_ligen_ligands"
  "../bench/fig10_ligen_ligands.pdb"
  "CMakeFiles/fig10_ligen_ligands.dir/fig10_ligen_ligands.cpp.o"
  "CMakeFiles/fig10_ligen_ligands.dir/fig10_ligen_ligands.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ligen_ligands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
