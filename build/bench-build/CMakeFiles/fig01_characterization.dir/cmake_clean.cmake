file(REMOVE_RECURSE
  "../bench/fig01_characterization"
  "../bench/fig01_characterization.pdb"
  "CMakeFiles/fig01_characterization.dir/fig01_characterization.cpp.o"
  "CMakeFiles/fig01_characterization.dir/fig01_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
