# Empty dependencies file for fig01_characterization.
# This may be replaced when dependencies are built.
