file(REMOVE_RECURSE
  "../bench/fig03_cronos_workload"
  "../bench/fig03_cronos_workload.pdb"
  "CMakeFiles/fig03_cronos_workload.dir/fig03_cronos_workload.cpp.o"
  "CMakeFiles/fig03_cronos_workload.dir/fig03_cronos_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cronos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
