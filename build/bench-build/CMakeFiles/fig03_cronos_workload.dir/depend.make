# Empty dependencies file for fig03_cronos_workload.
# This may be replaced when dependencies are built.
