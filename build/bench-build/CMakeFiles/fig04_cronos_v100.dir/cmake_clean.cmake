file(REMOVE_RECURSE
  "../bench/fig04_cronos_v100"
  "../bench/fig04_cronos_v100.pdb"
  "CMakeFiles/fig04_cronos_v100.dir/fig04_cronos_v100.cpp.o"
  "CMakeFiles/fig04_cronos_v100.dir/fig04_cronos_v100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cronos_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
