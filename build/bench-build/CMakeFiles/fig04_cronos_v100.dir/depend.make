# Empty dependencies file for fig04_cronos_v100.
# This may be replaced when dependencies are built.
