file(REMOVE_RECURSE
  "../bench/perf_ml"
  "../bench/perf_ml.pdb"
  "CMakeFiles/perf_ml.dir/perf_ml.cpp.o"
  "CMakeFiles/perf_ml.dir/perf_ml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
