file(REMOVE_RECURSE
  "../bench/fig02_ligen_workload"
  "../bench/fig02_ligen_workload.pdb"
  "CMakeFiles/fig02_ligen_workload.dir/fig02_ligen_workload.cpp.o"
  "CMakeFiles/fig02_ligen_workload.dir/fig02_ligen_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ligen_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
