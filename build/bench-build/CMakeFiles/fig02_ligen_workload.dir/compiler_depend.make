# Empty compiler generated dependencies file for fig02_ligen_workload.
# This may be replaced when dependencies are built.
