# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_ligen_atoms_v100.
