# Empty compiler generated dependencies file for fig08_ligen_atoms_v100.
# This may be replaced when dependencies are built.
