file(REMOVE_RECURSE
  "../bench/fig08_ligen_atoms_v100"
  "../bench/fig08_ligen_atoms_v100.pdb"
  "CMakeFiles/fig08_ligen_atoms_v100.dir/fig08_ligen_atoms_v100.cpp.o"
  "CMakeFiles/fig08_ligen_atoms_v100.dir/fig08_ligen_atoms_v100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ligen_atoms_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
