# Empty dependencies file for fig06_ligen_frags_v100.
# This may be replaced when dependencies are built.
