file(REMOVE_RECURSE
  "../bench/fig06_ligen_frags_v100"
  "../bench/fig06_ligen_frags_v100.pdb"
  "CMakeFiles/fig06_ligen_frags_v100.dir/fig06_ligen_frags_v100.cpp.o"
  "CMakeFiles/fig06_ligen_frags_v100.dir/fig06_ligen_frags_v100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ligen_frags_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
