# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06_ligen_frags_v100.
