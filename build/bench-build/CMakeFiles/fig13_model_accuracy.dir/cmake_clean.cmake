file(REMOVE_RECURSE
  "../bench/fig13_model_accuracy"
  "../bench/fig13_model_accuracy.pdb"
  "CMakeFiles/fig13_model_accuracy.dir/fig13_model_accuracy.cpp.o"
  "CMakeFiles/fig13_model_accuracy.dir/fig13_model_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
