# Empty compiler generated dependencies file for fig13_model_accuracy.
# This may be replaced when dependencies are built.
