file(REMOVE_RECURSE
  "../bench/extension_per_kernel_dvfs"
  "../bench/extension_per_kernel_dvfs.pdb"
  "CMakeFiles/extension_per_kernel_dvfs.dir/extension_per_kernel_dvfs.cpp.o"
  "CMakeFiles/extension_per_kernel_dvfs.dir/extension_per_kernel_dvfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_per_kernel_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
