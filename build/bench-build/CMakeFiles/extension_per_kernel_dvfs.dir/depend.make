# Empty dependencies file for extension_per_kernel_dvfs.
# This may be replaced when dependencies are built.
