file(REMOVE_RECURSE
  "../bench/fig05_cronos_mi100"
  "../bench/fig05_cronos_mi100.pdb"
  "CMakeFiles/fig05_cronos_mi100.dir/fig05_cronos_mi100.cpp.o"
  "CMakeFiles/fig05_cronos_mi100.dir/fig05_cronos_mi100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cronos_mi100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
