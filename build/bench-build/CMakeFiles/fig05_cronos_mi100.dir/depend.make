# Empty dependencies file for fig05_cronos_mi100.
# This may be replaced when dependencies are built.
