# Empty compiler generated dependencies file for dsem_ligen_tests.
# This may be replaced when dependencies are built.
