file(REMOVE_RECURSE
  "CMakeFiles/dsem_ligen_tests.dir/ligen/dock_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/dock_test.cpp.o.d"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/geometry_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/geometry_test.cpp.o.d"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/kernels_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/kernels_test.cpp.o.d"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/molecule_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/molecule_test.cpp.o.d"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/protein_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/protein_test.cpp.o.d"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/screening_test.cpp.o"
  "CMakeFiles/dsem_ligen_tests.dir/ligen/screening_test.cpp.o.d"
  "dsem_ligen_tests"
  "dsem_ligen_tests.pdb"
  "dsem_ligen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_ligen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
