# Empty dependencies file for dsem_celerity_tests.
# This may be replaced when dependencies are built.
