file(REMOVE_RECURSE
  "CMakeFiles/dsem_celerity_tests.dir/celerity/cluster_test.cpp.o"
  "CMakeFiles/dsem_celerity_tests.dir/celerity/cluster_test.cpp.o.d"
  "CMakeFiles/dsem_celerity_tests.dir/celerity/distributed_test.cpp.o"
  "CMakeFiles/dsem_celerity_tests.dir/celerity/distributed_test.cpp.o.d"
  "dsem_celerity_tests"
  "dsem_celerity_tests.pdb"
  "dsem_celerity_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_celerity_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
