# Empty compiler generated dependencies file for dsem_integration_tests.
# This may be replaced when dependencies are built.
