file(REMOVE_RECURSE
  "CMakeFiles/dsem_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/dsem_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "dsem_integration_tests"
  "dsem_integration_tests.pdb"
  "dsem_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
