# Empty compiler generated dependencies file for dsem_sim_tests.
# This may be replaced when dependencies are built.
