file(REMOVE_RECURSE
  "CMakeFiles/dsem_sim_tests.dir/sim/device_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/device_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/execution_model_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/execution_model_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/frequency_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/frequency_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/intel_device_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/intel_device_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/kernel_ir_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/kernel_ir_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/kernel_profile_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/kernel_profile_test.cpp.o.d"
  "CMakeFiles/dsem_sim_tests.dir/sim/power_model_test.cpp.o"
  "CMakeFiles/dsem_sim_tests.dir/sim/power_model_test.cpp.o.d"
  "dsem_sim_tests"
  "dsem_sim_tests.pdb"
  "dsem_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
