file(REMOVE_RECURSE
  "CMakeFiles/dsem_microbench_tests.dir/microbench/suite_test.cpp.o"
  "CMakeFiles/dsem_microbench_tests.dir/microbench/suite_test.cpp.o.d"
  "dsem_microbench_tests"
  "dsem_microbench_tests.pdb"
  "dsem_microbench_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_microbench_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
