# Empty dependencies file for dsem_microbench_tests.
# This may be replaced when dependencies are built.
