# Empty dependencies file for dsem_ml_tests.
# This may be replaced when dependencies are built.
