file(REMOVE_RECURSE
  "CMakeFiles/dsem_ml_tests.dir/ml/matrix_test.cpp.o"
  "CMakeFiles/dsem_ml_tests.dir/ml/matrix_test.cpp.o.d"
  "CMakeFiles/dsem_ml_tests.dir/ml/model_selection_test.cpp.o"
  "CMakeFiles/dsem_ml_tests.dir/ml/model_selection_test.cpp.o.d"
  "CMakeFiles/dsem_ml_tests.dir/ml/regressors_test.cpp.o"
  "CMakeFiles/dsem_ml_tests.dir/ml/regressors_test.cpp.o.d"
  "dsem_ml_tests"
  "dsem_ml_tests.pdb"
  "dsem_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
