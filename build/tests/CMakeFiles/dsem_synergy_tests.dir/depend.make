# Empty dependencies file for dsem_synergy_tests.
# This may be replaced when dependencies are built.
