file(REMOVE_RECURSE
  "CMakeFiles/dsem_synergy_tests.dir/synergy/backend_test.cpp.o"
  "CMakeFiles/dsem_synergy_tests.dir/synergy/backend_test.cpp.o.d"
  "CMakeFiles/dsem_synergy_tests.dir/synergy/plan_test.cpp.o"
  "CMakeFiles/dsem_synergy_tests.dir/synergy/plan_test.cpp.o.d"
  "CMakeFiles/dsem_synergy_tests.dir/synergy/queue_test.cpp.o"
  "CMakeFiles/dsem_synergy_tests.dir/synergy/queue_test.cpp.o.d"
  "dsem_synergy_tests"
  "dsem_synergy_tests.pdb"
  "dsem_synergy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_synergy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
