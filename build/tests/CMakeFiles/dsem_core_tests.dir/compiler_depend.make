# Empty compiler generated dependencies file for dsem_core_tests.
# This may be replaced when dependencies are built.
