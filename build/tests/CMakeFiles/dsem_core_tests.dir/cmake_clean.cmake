file(REMOVE_RECURSE
  "CMakeFiles/dsem_core_tests.dir/core/calibration_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/calibration_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/evaluation_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/evaluation_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/features_dataset_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/features_dataset_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/kernel_planner_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/kernel_planner_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/measurement_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/measurement_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/mi100_workflow_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/mi100_workflow_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/models_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/models_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/pareto_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/pareto_test.cpp.o.d"
  "CMakeFiles/dsem_core_tests.dir/core/workload_test.cpp.o"
  "CMakeFiles/dsem_core_tests.dir/core/workload_test.cpp.o.d"
  "dsem_core_tests"
  "dsem_core_tests.pdb"
  "dsem_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
