file(REMOVE_RECURSE
  "CMakeFiles/dsem_common_tests.dir/common/cli_test.cpp.o"
  "CMakeFiles/dsem_common_tests.dir/common/cli_test.cpp.o.d"
  "CMakeFiles/dsem_common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/dsem_common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/dsem_common_tests.dir/common/statistics_test.cpp.o"
  "CMakeFiles/dsem_common_tests.dir/common/statistics_test.cpp.o.d"
  "CMakeFiles/dsem_common_tests.dir/common/table_test.cpp.o"
  "CMakeFiles/dsem_common_tests.dir/common/table_test.cpp.o.d"
  "CMakeFiles/dsem_common_tests.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/dsem_common_tests.dir/common/thread_pool_test.cpp.o.d"
  "dsem_common_tests"
  "dsem_common_tests.pdb"
  "dsem_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
