# Empty dependencies file for dsem_common_tests.
# This may be replaced when dependencies are built.
