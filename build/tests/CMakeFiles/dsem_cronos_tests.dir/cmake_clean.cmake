file(REMOVE_RECURSE
  "CMakeFiles/dsem_cronos_tests.dir/cronos/grid_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/grid_test.cpp.o.d"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/kernels_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/kernels_test.cpp.o.d"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/law_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/law_test.cpp.o.d"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/problems_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/problems_test.cpp.o.d"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/solver_physics_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/solver_physics_test.cpp.o.d"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/solver_test.cpp.o"
  "CMakeFiles/dsem_cronos_tests.dir/cronos/solver_test.cpp.o.d"
  "dsem_cronos_tests"
  "dsem_cronos_tests.pdb"
  "dsem_cronos_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_cronos_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
