# Empty dependencies file for dsem_cronos_tests.
# This may be replaced when dependencies are built.
