# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dsem_common_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_synergy_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_cronos_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_ligen_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_celerity_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_microbench_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_core_tests[1]_include.cmake")
include("/root/repo/build/tests/dsem_integration_tests[1]_include.cmake")
