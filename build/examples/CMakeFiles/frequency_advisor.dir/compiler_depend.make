# Empty compiler generated dependencies file for frequency_advisor.
# This may be replaced when dependencies are built.
