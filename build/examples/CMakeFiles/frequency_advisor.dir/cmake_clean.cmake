file(REMOVE_RECURSE
  "CMakeFiles/frequency_advisor.dir/frequency_advisor.cpp.o"
  "CMakeFiles/frequency_advisor.dir/frequency_advisor.cpp.o.d"
  "frequency_advisor"
  "frequency_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
