file(REMOVE_RECURSE
  "CMakeFiles/mhd_simulation.dir/mhd_simulation.cpp.o"
  "CMakeFiles/mhd_simulation.dir/mhd_simulation.cpp.o.d"
  "mhd_simulation"
  "mhd_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
