# Empty compiler generated dependencies file for mhd_simulation.
# This may be replaced when dependencies are built.
