# Empty dependencies file for dsem_celerity.
# This may be replaced when dependencies are built.
