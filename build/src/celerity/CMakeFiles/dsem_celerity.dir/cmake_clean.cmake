file(REMOVE_RECURSE
  "CMakeFiles/dsem_celerity.dir/cluster.cpp.o"
  "CMakeFiles/dsem_celerity.dir/cluster.cpp.o.d"
  "CMakeFiles/dsem_celerity.dir/distributed.cpp.o"
  "CMakeFiles/dsem_celerity.dir/distributed.cpp.o.d"
  "libdsem_celerity.a"
  "libdsem_celerity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_celerity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
