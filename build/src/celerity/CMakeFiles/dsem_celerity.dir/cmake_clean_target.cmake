file(REMOVE_RECURSE
  "libdsem_celerity.a"
)
