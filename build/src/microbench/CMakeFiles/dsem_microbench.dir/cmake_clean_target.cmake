file(REMOVE_RECURSE
  "libdsem_microbench.a"
)
