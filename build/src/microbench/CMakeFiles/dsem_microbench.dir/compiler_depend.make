# Empty compiler generated dependencies file for dsem_microbench.
# This may be replaced when dependencies are built.
