file(REMOVE_RECURSE
  "CMakeFiles/dsem_microbench.dir/suite.cpp.o"
  "CMakeFiles/dsem_microbench.dir/suite.cpp.o.d"
  "libdsem_microbench.a"
  "libdsem_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
