
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/dsem_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/device_spec.cpp" "src/sim/CMakeFiles/dsem_sim.dir/device_spec.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/device_spec.cpp.o.d"
  "/root/repo/src/sim/execution_model.cpp" "src/sim/CMakeFiles/dsem_sim.dir/execution_model.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/execution_model.cpp.o.d"
  "/root/repo/src/sim/frequency.cpp" "src/sim/CMakeFiles/dsem_sim.dir/frequency.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/frequency.cpp.o.d"
  "/root/repo/src/sim/kernel_ir.cpp" "src/sim/CMakeFiles/dsem_sim.dir/kernel_ir.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/kernel_ir.cpp.o.d"
  "/root/repo/src/sim/kernel_profile.cpp" "src/sim/CMakeFiles/dsem_sim.dir/kernel_profile.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/dsem_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/dsem_sim.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
