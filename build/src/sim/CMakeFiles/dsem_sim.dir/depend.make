# Empty dependencies file for dsem_sim.
# This may be replaced when dependencies are built.
