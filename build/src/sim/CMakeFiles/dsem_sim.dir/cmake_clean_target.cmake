file(REMOVE_RECURSE
  "libdsem_sim.a"
)
