file(REMOVE_RECURSE
  "CMakeFiles/dsem_sim.dir/device.cpp.o"
  "CMakeFiles/dsem_sim.dir/device.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/device_spec.cpp.o"
  "CMakeFiles/dsem_sim.dir/device_spec.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/execution_model.cpp.o"
  "CMakeFiles/dsem_sim.dir/execution_model.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/frequency.cpp.o"
  "CMakeFiles/dsem_sim.dir/frequency.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/kernel_ir.cpp.o"
  "CMakeFiles/dsem_sim.dir/kernel_ir.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/kernel_profile.cpp.o"
  "CMakeFiles/dsem_sim.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/dsem_sim.dir/power_model.cpp.o"
  "CMakeFiles/dsem_sim.dir/power_model.cpp.o.d"
  "libdsem_sim.a"
  "libdsem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
