# Empty compiler generated dependencies file for dsem_ligen.
# This may be replaced when dependencies are built.
