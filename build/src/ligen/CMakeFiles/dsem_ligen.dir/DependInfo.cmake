
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ligen/dock.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/dock.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/dock.cpp.o.d"
  "/root/repo/src/ligen/geometry.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/geometry.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/geometry.cpp.o.d"
  "/root/repo/src/ligen/kernels.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/kernels.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/kernels.cpp.o.d"
  "/root/repo/src/ligen/molecule.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/molecule.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/molecule.cpp.o.d"
  "/root/repo/src/ligen/protein.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/protein.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/protein.cpp.o.d"
  "/root/repo/src/ligen/screening.cpp" "src/ligen/CMakeFiles/dsem_ligen.dir/screening.cpp.o" "gcc" "src/ligen/CMakeFiles/dsem_ligen.dir/screening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synergy/CMakeFiles/dsem_synergy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
