file(REMOVE_RECURSE
  "CMakeFiles/dsem_ligen.dir/dock.cpp.o"
  "CMakeFiles/dsem_ligen.dir/dock.cpp.o.d"
  "CMakeFiles/dsem_ligen.dir/geometry.cpp.o"
  "CMakeFiles/dsem_ligen.dir/geometry.cpp.o.d"
  "CMakeFiles/dsem_ligen.dir/kernels.cpp.o"
  "CMakeFiles/dsem_ligen.dir/kernels.cpp.o.d"
  "CMakeFiles/dsem_ligen.dir/molecule.cpp.o"
  "CMakeFiles/dsem_ligen.dir/molecule.cpp.o.d"
  "CMakeFiles/dsem_ligen.dir/protein.cpp.o"
  "CMakeFiles/dsem_ligen.dir/protein.cpp.o.d"
  "CMakeFiles/dsem_ligen.dir/screening.cpp.o"
  "CMakeFiles/dsem_ligen.dir/screening.cpp.o.d"
  "libdsem_ligen.a"
  "libdsem_ligen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_ligen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
