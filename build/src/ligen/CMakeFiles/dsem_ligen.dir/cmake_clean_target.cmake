file(REMOVE_RECURSE
  "libdsem_ligen.a"
)
