# Empty dependencies file for dsem_core.
# This may be replaced when dependencies are built.
