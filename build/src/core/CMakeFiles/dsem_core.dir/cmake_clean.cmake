file(REMOVE_RECURSE
  "CMakeFiles/dsem_core.dir/characterization.cpp.o"
  "CMakeFiles/dsem_core.dir/characterization.cpp.o.d"
  "CMakeFiles/dsem_core.dir/dataset.cpp.o"
  "CMakeFiles/dsem_core.dir/dataset.cpp.o.d"
  "CMakeFiles/dsem_core.dir/ds_model.cpp.o"
  "CMakeFiles/dsem_core.dir/ds_model.cpp.o.d"
  "CMakeFiles/dsem_core.dir/evaluation.cpp.o"
  "CMakeFiles/dsem_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/dsem_core.dir/features.cpp.o"
  "CMakeFiles/dsem_core.dir/features.cpp.o.d"
  "CMakeFiles/dsem_core.dir/gp_model.cpp.o"
  "CMakeFiles/dsem_core.dir/gp_model.cpp.o.d"
  "CMakeFiles/dsem_core.dir/kernel_planner.cpp.o"
  "CMakeFiles/dsem_core.dir/kernel_planner.cpp.o.d"
  "CMakeFiles/dsem_core.dir/measurement.cpp.o"
  "CMakeFiles/dsem_core.dir/measurement.cpp.o.d"
  "CMakeFiles/dsem_core.dir/pareto.cpp.o"
  "CMakeFiles/dsem_core.dir/pareto.cpp.o.d"
  "CMakeFiles/dsem_core.dir/workload.cpp.o"
  "CMakeFiles/dsem_core.dir/workload.cpp.o.d"
  "libdsem_core.a"
  "libdsem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
