file(REMOVE_RECURSE
  "libdsem_core.a"
)
