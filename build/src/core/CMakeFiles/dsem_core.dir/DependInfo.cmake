
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/dsem_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/dsem_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/ds_model.cpp" "src/core/CMakeFiles/dsem_core.dir/ds_model.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/ds_model.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/dsem_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/dsem_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/features.cpp.o.d"
  "/root/repo/src/core/gp_model.cpp" "src/core/CMakeFiles/dsem_core.dir/gp_model.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/gp_model.cpp.o.d"
  "/root/repo/src/core/kernel_planner.cpp" "src/core/CMakeFiles/dsem_core.dir/kernel_planner.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/kernel_planner.cpp.o.d"
  "/root/repo/src/core/measurement.cpp" "src/core/CMakeFiles/dsem_core.dir/measurement.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/measurement.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/dsem_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/dsem_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/dsem_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cronos/CMakeFiles/dsem_cronos.dir/DependInfo.cmake"
  "/root/repo/build/src/ligen/CMakeFiles/dsem_ligen.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/dsem_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dsem_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/synergy/CMakeFiles/dsem_synergy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
