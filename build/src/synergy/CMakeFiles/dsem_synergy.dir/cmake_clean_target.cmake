file(REMOVE_RECURSE
  "libdsem_synergy.a"
)
