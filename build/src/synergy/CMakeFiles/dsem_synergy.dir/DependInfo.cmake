
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synergy/backend.cpp" "src/synergy/CMakeFiles/dsem_synergy.dir/backend.cpp.o" "gcc" "src/synergy/CMakeFiles/dsem_synergy.dir/backend.cpp.o.d"
  "/root/repo/src/synergy/queue.cpp" "src/synergy/CMakeFiles/dsem_synergy.dir/queue.cpp.o" "gcc" "src/synergy/CMakeFiles/dsem_synergy.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dsem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
