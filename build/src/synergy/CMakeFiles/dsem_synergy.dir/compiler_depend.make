# Empty compiler generated dependencies file for dsem_synergy.
# This may be replaced when dependencies are built.
