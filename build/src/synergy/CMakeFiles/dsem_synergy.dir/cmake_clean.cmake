file(REMOVE_RECURSE
  "CMakeFiles/dsem_synergy.dir/backend.cpp.o"
  "CMakeFiles/dsem_synergy.dir/backend.cpp.o.d"
  "CMakeFiles/dsem_synergy.dir/queue.cpp.o"
  "CMakeFiles/dsem_synergy.dir/queue.cpp.o.d"
  "libdsem_synergy.a"
  "libdsem_synergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_synergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
