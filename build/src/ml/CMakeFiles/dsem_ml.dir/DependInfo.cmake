
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/dsem_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/lasso.cpp" "src/ml/CMakeFiles/dsem_ml.dir/lasso.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/lasso.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/dsem_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/dsem_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/model_selection.cpp" "src/ml/CMakeFiles/dsem_ml.dir/model_selection.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/model_selection.cpp.o.d"
  "/root/repo/src/ml/regressor.cpp" "src/ml/CMakeFiles/dsem_ml.dir/regressor.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/regressor.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/dsem_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/svr.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/dsem_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/dsem_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
