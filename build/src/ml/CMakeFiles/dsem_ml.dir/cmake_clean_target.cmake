file(REMOVE_RECURSE
  "libdsem_ml.a"
)
