# Empty compiler generated dependencies file for dsem_ml.
# This may be replaced when dependencies are built.
