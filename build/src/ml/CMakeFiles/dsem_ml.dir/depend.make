# Empty dependencies file for dsem_ml.
# This may be replaced when dependencies are built.
