file(REMOVE_RECURSE
  "CMakeFiles/dsem_ml.dir/forest.cpp.o"
  "CMakeFiles/dsem_ml.dir/forest.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/lasso.cpp.o"
  "CMakeFiles/dsem_ml.dir/lasso.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/linear.cpp.o"
  "CMakeFiles/dsem_ml.dir/linear.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/matrix.cpp.o"
  "CMakeFiles/dsem_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/model_selection.cpp.o"
  "CMakeFiles/dsem_ml.dir/model_selection.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/regressor.cpp.o"
  "CMakeFiles/dsem_ml.dir/regressor.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/svr.cpp.o"
  "CMakeFiles/dsem_ml.dir/svr.cpp.o.d"
  "CMakeFiles/dsem_ml.dir/tree.cpp.o"
  "CMakeFiles/dsem_ml.dir/tree.cpp.o.d"
  "libdsem_ml.a"
  "libdsem_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
