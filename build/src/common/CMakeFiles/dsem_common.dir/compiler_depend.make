# Empty compiler generated dependencies file for dsem_common.
# This may be replaced when dependencies are built.
