file(REMOVE_RECURSE
  "libdsem_common.a"
)
