file(REMOVE_RECURSE
  "CMakeFiles/dsem_common.dir/cli.cpp.o"
  "CMakeFiles/dsem_common.dir/cli.cpp.o.d"
  "CMakeFiles/dsem_common.dir/statistics.cpp.o"
  "CMakeFiles/dsem_common.dir/statistics.cpp.o.d"
  "CMakeFiles/dsem_common.dir/table.cpp.o"
  "CMakeFiles/dsem_common.dir/table.cpp.o.d"
  "CMakeFiles/dsem_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dsem_common.dir/thread_pool.cpp.o.d"
  "libdsem_common.a"
  "libdsem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
