# Empty dependencies file for dsem_common.
# This may be replaced when dependencies are built.
