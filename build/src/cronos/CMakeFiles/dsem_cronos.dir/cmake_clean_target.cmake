file(REMOVE_RECURSE
  "libdsem_cronos.a"
)
