file(REMOVE_RECURSE
  "CMakeFiles/dsem_cronos.dir/grid.cpp.o"
  "CMakeFiles/dsem_cronos.dir/grid.cpp.o.d"
  "CMakeFiles/dsem_cronos.dir/kernels.cpp.o"
  "CMakeFiles/dsem_cronos.dir/kernels.cpp.o.d"
  "CMakeFiles/dsem_cronos.dir/law.cpp.o"
  "CMakeFiles/dsem_cronos.dir/law.cpp.o.d"
  "CMakeFiles/dsem_cronos.dir/problems.cpp.o"
  "CMakeFiles/dsem_cronos.dir/problems.cpp.o.d"
  "CMakeFiles/dsem_cronos.dir/solver.cpp.o"
  "CMakeFiles/dsem_cronos.dir/solver.cpp.o.d"
  "libdsem_cronos.a"
  "libdsem_cronos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsem_cronos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
