# Empty compiler generated dependencies file for dsem_cronos.
# This may be replaced when dependencies are built.
