
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cronos/grid.cpp" "src/cronos/CMakeFiles/dsem_cronos.dir/grid.cpp.o" "gcc" "src/cronos/CMakeFiles/dsem_cronos.dir/grid.cpp.o.d"
  "/root/repo/src/cronos/kernels.cpp" "src/cronos/CMakeFiles/dsem_cronos.dir/kernels.cpp.o" "gcc" "src/cronos/CMakeFiles/dsem_cronos.dir/kernels.cpp.o.d"
  "/root/repo/src/cronos/law.cpp" "src/cronos/CMakeFiles/dsem_cronos.dir/law.cpp.o" "gcc" "src/cronos/CMakeFiles/dsem_cronos.dir/law.cpp.o.d"
  "/root/repo/src/cronos/problems.cpp" "src/cronos/CMakeFiles/dsem_cronos.dir/problems.cpp.o" "gcc" "src/cronos/CMakeFiles/dsem_cronos.dir/problems.cpp.o.d"
  "/root/repo/src/cronos/solver.cpp" "src/cronos/CMakeFiles/dsem_cronos.dir/solver.cpp.o" "gcc" "src/cronos/CMakeFiles/dsem_cronos.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synergy/CMakeFiles/dsem_synergy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
